# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet test race bench bench-smoke bench-check check experiments verify pqd loadtest loadtest-batch loadtest-wal loadtest-lease crash-smoke lease-smoke obs-smoke

all: build test

build:
	go build ./...
	go vet ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

# One target that gates a change: vet, full tests, the race detector on the
# concurrency-heavy packages, and a metrics-on benchmark smoke run.
check: vet test
	go test -race ./internal/obs/ ./internal/core/ ./internal/lockfree/
	$(MAKE) bench-smoke

# Short metrics-on pass over the native queues: exercises every probe site
# and prints the snapshot tables. Also records the sharded-vs-strict head-to-
# head at 8 goroutines (BENCH_sharded.json), the elimination front-end vs the
# strict queue on the 50/50 hot-key workload (BENCH_elim.json), the four-way
# relaxed-backend shootout including the spray queue (BENCH_spray.json), and
# runs a short loopback pass of the network daemon, leaving its latency
# report in BENCH_server.json. The nativebench text output is normalized
# into the committed JSON artifacts by benchcheck.
bench-smoke:
	go run ./cmd/skipbench -metrics -metrics-duration 200ms
	go run ./cmd/nativebench -workers 8 -duration 2s -structures StrictPQ,Sharded | tee .bench_sharded.txt
	go run ./cmd/benchcheck -normalize .bench_sharded.txt -normalize-out BENCH_sharded.json
	go run ./cmd/nativebench -workers 8 -duration 2s -structures StrictPQ,Elim -keyspan 1 -metrics | tee .bench_elim.txt
	go run ./cmd/benchcheck -normalize .bench_elim.txt -normalize-out BENCH_elim.json
	go run ./cmd/nativebench -workers 8 -duration 2s -structures StrictPQ,Sharded,Elim,Spray -spray-k 8 | tee .bench_spray.txt
	go run ./cmd/benchcheck -normalize .bench_spray.txt -normalize-out BENCH_spray.json
	rm -f .bench_sharded.txt .bench_elim.txt .bench_spray.txt
	$(MAKE) loadtest LOADTEST_DURATION=2s

BENCH_TOLERANCE ?= 0.30

# Regression guard: rerun the recorded benchmarks and fail loudly if
# throughput dropped more than BENCH_TOLERANCE against the committed
# baselines. The deterministic ratio gate (batched vs single-op committed
# artifacts) runs first so environment noise in the reruns can't mask it.
# The server macro-benchmark reruns a short loadtest into a scratch file
# (the committed BENCH_server.json is left untouched); the native
# micro-benchmarks are rerun by cmd/benchcheck itself from the names
# recorded in BENCH_baseline.json.
bench-check:
	go run ./cmd/benchcheck \
		-ratio-base BENCH_server.json -ratio-fresh BENCH_server_batch.json -ratio-min 3.0
	go run ./cmd/benchcheck \
		-ratio-base BENCH_server.json -ratio-fresh BENCH_server_lease.json -ratio-min 0.7
	$(MAKE) loadtest LOADTEST_DURATION=5s LOADTEST_OUT=.bench_server_fresh.json
	$(MAKE) loadtest LOADTEST_DURATION=5s LOADTEST_OUT=.bench_server_batch_fresh.json \
		PQLOAD_FLAGS="-batch 64 -batch-linger 400us -workers 384"
	rm -rf .wal-bench
	$(MAKE) loadtest LOADTEST_DURATION=5s LOADTEST_OUT=.bench_server_wal_fresh.json \
		PQD_FLAGS="-wal-dir .wal-bench -wal-mode sync"
	go run ./cmd/benchcheck -tolerance $(BENCH_TOLERANCE) \
		-server-baseline BENCH_server.json -server-fresh .bench_server_fresh.json \
		-native-baseline BENCH_baseline.json
	go run ./cmd/benchcheck -tolerance $(BENCH_TOLERANCE) \
		-server-baseline BENCH_server_batch.json -server-fresh .bench_server_batch_fresh.json
	go run ./cmd/benchcheck -tolerance $(BENCH_TOLERANCE) \
		-server-baseline BENCH_server_wal.json -server-fresh .bench_server_wal_fresh.json
	go run ./cmd/nativebench -workers 8 -duration 2s -structures StrictPQ,Sharded,Elim,Spray -spray-k 8 | tee .bench_spray_fresh.txt
	go run ./cmd/benchcheck -tolerance $(BENCH_TOLERANCE) \
		-native-report .bench_spray_fresh.txt -require "Spray>=StrictPQ"
	rm -rf .bench_server_fresh.json .bench_server_batch_fresh.json .bench_server_wal_fresh.json .bench_spray_fresh.txt .wal-bench

# Build the network daemon and its load generator into bin/.
pqd:
	go build -o bin/pqd ./cmd/pqd
	go build -o bin/pqload ./cmd/pqload

# Observability smoke: boot the real daemon in-process with the admin
# surface and flight recorders on, drive traced traffic, and validate
# /metrics against the golden catalog (cmd/pqd/testdata/metrics.golden),
# /healthz through a drain, and /debug/flight span content — plus the
# flight recorder's own test battery, all under the race detector.
obs-smoke:
	go test -race -count=1 -run 'ObsSmoke|RunDrainsOnSIGTERM|RunLeaseMode|RunVersion' ./cmd/pqd/
	go test -race -count=1 ./internal/flight/ ./internal/admin/

LOADTEST_DURATION ?= 10s
LOADTEST_OUT ?= BENCH_server.json
# Extra pqd flags for the loadtest run (e.g. "-wal-dir .wal -wal-mode sync"
# for a durable loopback).
PQD_FLAGS ?=
# Extra pqload flags (e.g. "-batch 64 -workers 256" for the coalesced run).
PQLOAD_FLAGS ?=

# Loopback smoke test of the daemon: start pqd on an ephemeral port, drive
# it with the closed-loop load generator (report lands in BENCH_server.json),
# then SIGTERM it and require a clean drain (pqd exits 0).
loadtest: pqd
	@set -e; \
	./bin/pqd -addr 127.0.0.1:0 -metrics 127.0.0.1:0 $(PQD_FLAGS) >.pqd.out 2>&1 & pid=$$!; \
	addr=""; \
	for i in $$(seq 50); do \
	  addr=$$(sed -n 's/.*listening addr=\([^ ]*\).*/\1/p' .pqd.out); \
	  [ -n "$$addr" ] && break; sleep 0.1; \
	done; \
	if [ -z "$$addr" ]; then echo "pqd never announced an address:"; cat .pqd.out; kill $$pid 2>/dev/null; exit 1; fi; \
	rc=0; ./bin/pqload -addr $$addr -duration $(LOADTEST_DURATION) $(PQLOAD_FLAGS) -out $(LOADTEST_OUT) || rc=$$?; \
	kill -TERM $$pid; wait $$pid || rc=$$?; \
	cat .pqd.out; rm -f .pqd.out; exit $$rc

# Batched loopback: the op-coalescing loadtest whose report is the
# committed BENCH_server_batch.json baseline; bench-check requires it to
# hold a ≥3× throughput multiple over BENCH_server.json. 256 closed-loop
# workers over the default 8 connections keep enough ops pending per
# connection for the client batcher to pack deep OpBatch frames.
loadtest-batch:
	$(MAKE) loadtest LOADTEST_OUT=BENCH_server_batch.json \
		PQLOAD_FLAGS="-batch 64 -batch-linger 400us -workers 384"

# Durable loopback: the sync-mode WAL loadtest whose report is the
# committed BENCH_server_wal.json baseline that bench-check guards.
loadtest-wal:
	rm -rf .wal-loadtest
	$(MAKE) loadtest LOADTEST_OUT=BENCH_server_wal.json \
		PQD_FLAGS="-wal-dir .wal-loadtest -wal-mode sync"
	rm -rf .wal-loadtest

# Durable lease loopback: the at-least-once loadtest whose report is the
# committed BENCH_server_lease.json baseline; bench-check requires leased
# consumption (PopLease + Ack round trips) to hold ≥0.7× the plain
# DeleteMin op rate of BENCH_server.json.
loadtest-lease:
	$(MAKE) loadtest LOADTEST_OUT=BENCH_server_lease.json \
		PQD_FLAGS="-lease -lease-ttl 30s" PQLOAD_FLAGS="-lease"

# Crash-injection battery: 25 kill -9/recover cycles against a real pqd
# under concurrent durable load, verifying exact multiset conservation of
# every acknowledged operation (see internal/wal/crashtest).
crash-smoke:
	go test -count=1 -v -run TestCrashRecovery ./internal/wal/crashtest/ -crash-cycles=25

# At-least-once crash battery: 25 cycles of kill -9'd consumer processes
# (with periodic daemon kills layered in) against a lease-enabled durable
# pqd, verifying zero acked-element loss, zero post-ack delivery, and
# redelivery of every orphaned lease within two expiry windows (see
# internal/lease/crashtest).
lease-smoke:
	go test -count=1 -v -run TestConsumerCrashRedelivery ./internal/lease/crashtest/ -lease-crash-cycles=25

short:
	go test -short ./...

bench:
	go test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper at full scale (~10 min).
experiments:
	go run ./cmd/skipbench -experiment all | tee experiments_full.txt

# Quick end-to-end check: build, vet, tests, a fast benchmark pass and a
# scaled-down experiment sweep.
verify: build test
	go test -bench=Fig3 -benchtime=10000x .
	go run ./cmd/skipbench -experiment fig6 -scale 0.05 -maxprocs 16
