# Convenience targets; everything is plain `go` underneath.

.PHONY: all build vet test race bench bench-smoke check experiments verify pqd loadtest

all: build test

build:
	go build ./...
	go vet ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

# One target that gates a change: vet, full tests, the race detector on the
# concurrency-heavy packages, and a metrics-on benchmark smoke run.
check: vet test
	go test -race ./internal/obs/ ./internal/core/ ./internal/lockfree/
	$(MAKE) bench-smoke

# Short metrics-on pass over the native queues: exercises every probe site
# and prints the snapshot tables. Also runs a short loopback pass of the
# network daemon, leaving its latency report in BENCH_server.json.
bench-smoke:
	go run ./cmd/skipbench -metrics -metrics-duration 200ms
	$(MAKE) loadtest LOADTEST_DURATION=2s

# Build the network daemon and its load generator into bin/.
pqd:
	go build -o bin/pqd ./cmd/pqd
	go build -o bin/pqload ./cmd/pqload

LOADTEST_DURATION ?= 10s

# Loopback smoke test of the daemon: start pqd on an ephemeral port, drive
# it with the closed-loop load generator (report lands in BENCH_server.json),
# then SIGTERM it and require a clean drain (pqd exits 0).
loadtest: pqd
	@set -e; \
	./bin/pqd -addr 127.0.0.1:0 -metrics 127.0.0.1:0 >.pqd.out 2>&1 & pid=$$!; \
	addr=""; \
	for i in $$(seq 50); do \
	  addr=$$(sed -n 's/.*listening addr=\([^ ]*\).*/\1/p' .pqd.out); \
	  [ -n "$$addr" ] && break; sleep 0.1; \
	done; \
	if [ -z "$$addr" ]; then echo "pqd never announced an address:"; cat .pqd.out; kill $$pid 2>/dev/null; exit 1; fi; \
	rc=0; ./bin/pqload -addr $$addr -duration $(LOADTEST_DURATION) -out BENCH_server.json || rc=$$?; \
	kill -TERM $$pid; wait $$pid || rc=$$?; \
	cat .pqd.out; rm -f .pqd.out; exit $$rc

short:
	go test -short ./...

bench:
	go test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper at full scale (~10 min).
experiments:
	go run ./cmd/skipbench -experiment all | tee experiments_full.txt

# Quick end-to-end check: build, vet, tests, a fast benchmark pass and a
# scaled-down experiment sweep.
verify: build test
	go test -bench=Fig3 -benchtime=10000x .
	go run ./cmd/skipbench -experiment fig6 -scale 0.05 -maxprocs 16
