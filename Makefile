# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test race bench experiments verify

all: build test

build:
	go build ./...
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

short:
	go test -short ./...

bench:
	go test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper at full scale (~10 min).
experiments:
	go run ./cmd/skipbench -experiment all | tee experiments_full.txt

# Quick end-to-end check: build, vet, tests, a fast benchmark pass and a
# scaled-down experiment sweep.
verify: build test
	go test -bench=Fig3 -benchtime=10000x .
	go run ./cmd/skipbench -experiment fig6 -scale 0.05 -maxprocs 16
