// Command pqtrace merges a client-side flight dump with a server-side one
// and prints the end-to-end span attribution: how much of each traced
// request's measured latency was network (plus client pipeline wait),
// server queueing, queue-structure work, and response flushing.
//
// Inputs:
//
//	-client FILE   the client dump, as written by `pqload -trace-out` (a
//	               flight.Dump JSON document)
//	-server SRC    the server dump: a file, or an http(s) URL of a running
//	               pqd's /debug/flight endpoint. Accepts either a raw
//	               flight.Dump or the /debug/flight payload, from which the
//	               recorder named "server" is selected.
//
// The span math only ever subtracts timestamps taken by the same process,
// so client and server clocks need no synchronization (see
// internal/flight). Typical session:
//
//	pqd -flight 4096 -admin 127.0.0.1:9401 &
//	pqload -trace-out client.json -duration 5s
//	pqtrace -client client.json -server http://127.0.0.1:9401/debug/flight
//
// -require FRAC exits 1 when the fraction of traces fully attributed falls
// below FRAC (ring wrap-around on either side orphans traces), for use as
// a CI gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"skipqueue/internal/flight"
)

// loadClient reads a flight.Dump JSON file.
func loadClient(path string) (flight.Dump, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return flight.Dump{}, err
	}
	var d flight.Dump
	if err := json.Unmarshal(data, &d); err != nil {
		return flight.Dump{}, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

// loadServer reads the server dump from a file or URL, accepting either a
// raw flight.Dump or a /debug/flight payload (picking the "server"
// recorder, the one holding request spans).
func loadServer(src string) (flight.Dump, error) {
	var data []byte
	var err error
	if strings.HasPrefix(src, "http://") || strings.HasPrefix(src, "https://") {
		resp, herr := http.Get(src)
		if herr != nil {
			return flight.Dump{}, herr
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return flight.Dump{}, fmt.Errorf("%s: HTTP %d", src, resp.StatusCode)
		}
		data, err = io.ReadAll(resp.Body)
	} else {
		data, err = os.ReadFile(src)
	}
	if err != nil {
		return flight.Dump{}, err
	}

	// /debug/flight payload shape first; fall back to a raw dump.
	var payload struct {
		Recorders []flight.Dump `json:"recorders"`
	}
	if err := json.Unmarshal(data, &payload); err == nil && len(payload.Recorders) > 0 {
		for _, d := range payload.Recorders {
			if d.Name == "server" {
				return d, nil
			}
		}
		return flight.Dump{}, fmt.Errorf("%s: no recorder named \"server\" among %d recorders (was pqd started with -flight?)", src, len(payload.Recorders))
	}
	var d flight.Dump
	if err := json.Unmarshal(data, &d); err != nil {
		return flight.Dump{}, fmt.Errorf("%s: %w", src, err)
	}
	return d, nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pqtrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		clientPath = fs.String("client", "", "client flight dump file (from pqload -trace-out); required")
		serverSrc  = fs.String("server", "", "server flight dump: file or /debug/flight URL; required")
		require    = fs.Float64("require", 0, "exit 1 when the attributed fraction is below this (0 = no gate)")
		asJSON     = fs.Bool("json", false, "emit the attribution as JSON instead of the table")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *clientPath == "" || *serverSrc == "" {
		fmt.Fprintln(stderr, "pqtrace: both -client and -server are required")
		fs.Usage()
		return 2
	}

	cd, err := loadClient(*clientPath)
	if err != nil {
		fmt.Fprintf(stderr, "pqtrace: client dump: %v\n", err)
		return 1
	}
	sd, err := loadServer(*serverSrc)
	if err != nil {
		fmt.Fprintf(stderr, "pqtrace: server dump: %v\n", err)
		return 1
	}

	at := flight.Attribute(cd, sd)
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Total      int           `json:"total"`
			Attributed int           `json:"attributed"`
			Rate       float64       `json:"rate"`
			ClientOnly int           `json:"client_only"`
			ServerOnly int           `json:"server_only"`
			Partial    int           `json:"partial"`
			Spans      []flight.Span `json:"spans"`
		}{at.Total, at.Attributed, at.Rate(), at.ClientOnly, at.ServerOnly, at.Partial, at.Spans}); err != nil {
			fmt.Fprintf(stderr, "pqtrace: %v\n", err)
			return 1
		}
	} else {
		fmt.Fprint(stdout, at.Table())
	}

	if *require > 0 && at.Rate() < *require {
		fmt.Fprintf(stderr, "pqtrace: attribution rate %.4f below required %.4f (clientOnly=%d serverOnly=%d partial=%d)\n",
			at.Rate(), *require, at.ClientOnly, at.ServerOnly, at.Partial)
		return 1
	}
	return 0
}
