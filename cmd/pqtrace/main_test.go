package main

import (
	"bytes"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"skipqueue"
	"skipqueue/internal/admin"
	"skipqueue/internal/client"
	"skipqueue/internal/flight"
	"skipqueue/internal/server"
)

// attribution mirrors pqtrace's -json output shape.
type attribution struct {
	Total      int           `json:"total"`
	Attributed int           `json:"attributed"`
	Rate       float64       `json:"rate"`
	ClientOnly int           `json:"client_only"`
	ServerOnly int           `json:"server_only"`
	Partial    int           `json:"partial"`
	Spans      []flight.Span `json:"spans"`
}

// runTraced boots a traced server in-process, drives total traced requests
// through a traced client, and returns both dumps.
func runTraced(t *testing.T, total int) (clientDump, serverDump flight.Dump) {
	t.Helper()
	// Each traced request leaves 3 server events (read/apply/flush) and 2
	// client events (send/recv); size the rings so nothing is overwritten.
	sfr := flight.New("server", 1, 4*total)
	cfr := flight.New("client", 1, 4*total)
	srv := server.New(server.Config{Backend: skipqueue.NewPQ[[]byte](), Flight: sfr})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })

	cl, err := client.Dial(client.Config{Addr: ln.Addr().String(), Conns: 4, Flight: cfr})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const workers = 8
	per := total / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for i := 0; i < per/2; i++ {
				if err := cl.Insert(base+int64(i), []byte("t")); err != nil {
					t.Error(err)
					return
				}
				if _, _, _, err := cl.DeleteMin(); err != nil {
					t.Error(err)
					return
				}
			}
		}(int64(w) * int64(per))
	}
	wg.Wait()
	return cfr.Snapshot(), sfr.Snapshot()
}

func writeJSON(t *testing.T, path string, v any) {
	t.Helper()
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestAttributes10K is the acceptance run: 10,000 traced requests, merged
// by pqtrace, must attribute >= 95% with no orphan trace IDs on either
// side. The server dump is fed both as a raw file and through a live
// /debug/flight-shaped HTTP endpoint.
func TestAttributes10K(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-request acceptance run")
	}
	const total = 10000
	cd, sd := runTraced(t, total)

	dir := t.TempDir()
	cpath := filepath.Join(dir, "client.json")
	spath := filepath.Join(dir, "server.json")
	writeJSON(t, cpath, cd)
	writeJSON(t, spath, admin.FlightPayload{Recorders: []flight.Dump{sd, {Name: "structure"}}})

	var out, errOut bytes.Buffer
	if code := run([]string{"-client", cpath, "-server", spath, "-require", "0.95", "-json"}, &out, &errOut); code != 0 {
		t.Fatalf("pqtrace exited %d: %s", code, errOut.String())
	}
	var at attribution
	if err := json.Unmarshal(out.Bytes(), &at); err != nil {
		t.Fatalf("output not JSON: %v\n%s", err, out.String())
	}
	if at.Total != total {
		t.Fatalf("Total = %d, want %d", at.Total, total)
	}
	if at.Rate < 0.95 {
		t.Fatalf("attribution rate %.4f < 0.95", at.Rate)
	}
	if at.ClientOnly != 0 || at.ServerOnly != 0 {
		t.Fatalf("orphan traces: clientOnly=%d serverOnly=%d", at.ClientOnly, at.ServerOnly)
	}
	for _, s := range at.Spans {
		if s.EndToEnd <= 0 || s.Server < 0 || s.Server > s.EndToEnd {
			t.Fatalf("implausible span %+v", s)
		}
	}

	// The table path over a live /debug/flight-shaped URL.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(admin.FlightPayload{Recorders: []flight.Dump{sd}})
	}))
	defer ts.Close()
	out.Reset()
	if code := run([]string{"-client", cpath, "-server", ts.URL, "-require", "0.95"}, &out, &errOut); code != 0 {
		t.Fatalf("pqtrace (URL) exited %d: %s", code, errOut.String())
	}
	for _, want := range []string{"span", "network", "server.queue", "structure", "end-to-end"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("table missing %q:\n%s", want, out.String())
		}
	}
}

// TestRequireGate: an empty server dump attributes nothing, so -require
// fails the run with exit 1; without the gate the same merge exits 0.
func TestRequireGate(t *testing.T) {
	cd, _ := runTraced(t, 100)
	dir := t.TempDir()
	cpath := filepath.Join(dir, "client.json")
	spath := filepath.Join(dir, "server.json")
	writeJSON(t, cpath, cd)
	writeJSON(t, spath, flight.Dump{Name: "server"})

	var out, errOut bytes.Buffer
	if code := run([]string{"-client", cpath, "-server", spath, "-require", "0.95"}, &out, &errOut); code != 1 {
		t.Fatalf("gated run exited %d, want 1; stderr: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "below required") {
		t.Fatalf("stderr missing gate message: %s", errOut.String())
	}
	errOut.Reset()
	if code := run([]string{"-client", cpath, "-server", spath}, &out, &errOut); code != 0 {
		t.Fatalf("ungated run exited %d: %s", code, errOut.String())
	}
}

// TestBadInputs: usage and load errors are distinguishable exit codes.
func TestBadInputs(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("missing flags: exit %d, want 2", code)
	}
	if code := run([]string{"-client", "/nonexistent", "-server", "/nonexistent"}, &out, &errOut); code != 1 {
		t.Fatalf("missing files: exit %d, want 1", code)
	}

	// A payload without a "server" recorder is a load error, not a panic.
	dir := t.TempDir()
	cpath := filepath.Join(dir, "client.json")
	spath := filepath.Join(dir, "server.json")
	writeJSON(t, cpath, flight.Dump{Name: "client"})
	writeJSON(t, spath, admin.FlightPayload{Recorders: []flight.Dump{{Name: "structure"}}})
	errOut.Reset()
	if code := run([]string{"-client", cpath, "-server", spath}, &out, &errOut); code != 1 {
		t.Fatalf("no server recorder: exit %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "no recorder named") {
		t.Fatalf("stderr missing recorder error: %s", errOut.String())
	}
}
