package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"

	"skipqueue/internal/admin"
	"skipqueue/internal/client"
	"skipqueue/internal/flight"
)

var adminRe = regexp.MustCompile(`admin addr=(\S+)`)

// adminGetErr scrapes one admin endpoint, returning the transport error
// (listener down) instead of failing the test.
func adminGetErr(addr, path string) (int, error) {
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// adminGet scrapes one admin endpoint and returns status and body.
func adminGet(t *testing.T, addr, path string) (int, string) {
	t.Helper()
	resp, err := http.Get("http://" + addr + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// promLine validates one exposition line: comment, or `name{labels} value`.
var promLine = regexp.MustCompile(`^(#.*|[a-zA-Z_][a-zA-Z0-9_]*(\{[^}]*\})? [-+]?[0-9.eE+Inf]+)$`)

// TestObsSmoke boots the real daemon in-process with the full
// observability surface on, drives traced traffic through a real client,
// and validates every admin endpoint: /metrics against the golden metric
// catalog, /healthz, and /debug/flight span content.
func TestObsSmoke(t *testing.T) {
	w := &addrWriter{addrCh: make(chan string, 1)}
	var stderr bytes.Buffer
	exitc := make(chan int, 1)
	go func() {
		exitc <- run([]string{
			"-addr", "127.0.0.1:0",
			"-admin", "127.0.0.1:0",
			"-flight", "1024",
			"-drain-window", "50ms",
			"-wal-dir", t.TempDir(),
			"-lease",
		}, w, &stderr)
	}()
	var addr string
	select {
	case addr = <-w.addrCh:
	case <-time.After(5 * time.Second):
		t.Fatalf("daemon never announced its address; stderr: %s", stderr.String())
	}
	am := adminRe.FindStringSubmatch(w.String())
	if am == nil {
		t.Fatalf("daemon never announced its admin address:\n%s", w.String())
	}
	adminAddr := am[1]

	cfr := flight.New("client", 0, 1024)
	cl, err := client.Dial(client.Config{Addr: addr, Flight: cfr})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	const ops = 200
	for i := 0; i < ops; i++ {
		if err := cl.Insert(int64(i), []byte("smoke")); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	for i := 0; i < ops; i++ {
		if _, _, found, err := cl.DeleteMin(); err != nil || !found {
			t.Fatalf("DeleteMin %d: found=%v err=%v", i, found, err)
		}
	}
	// One lease round trip so the skipqueue.lease probes carry traffic.
	if err := cl.Insert(1, []byte("leased")); err != nil {
		t.Fatal(err)
	}
	l, found, err := cl.PopLease(0)
	if err != nil || !found {
		t.Fatalf("PopLease: found=%v err=%v", found, err)
	}
	if err := l.Ack(); err != nil {
		t.Fatalf("Ack: %v", err)
	}

	if code, body := adminGet(t, adminAddr, "/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthz = %d %q", code, body)
	}

	// /metrics: well-formed exposition containing every golden metric.
	code, body := adminGet(t, adminAddr, "/metrics")
	if code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if !promLine.MatchString(line) {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "metrics.golden"))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range strings.Fields(string(golden)) {
		if !strings.Contains(body, name) {
			t.Errorf("exposition missing golden metric %s", name)
		}
	}
	if t.Failed() {
		t.Fatalf("full exposition:\n%s", body)
	}

	// Second scrape grows rates from the delta window.
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	if _, body := adminGet(t, adminAddr, "/metrics"); !strings.Contains(body, "pqd_skipqueue_server_frames_rate") {
		t.Fatalf("second scrape missing rate gauges:\n%s", body)
	}

	// /debug/flight: both recorders present, server spans recorded for the
	// traced traffic.
	_, fbody := adminGet(t, adminAddr, "/debug/flight")
	var p admin.FlightPayload
	if err := json.Unmarshal([]byte(fbody), &p); err != nil {
		t.Fatalf("flight payload does not decode: %v", err)
	}
	names := map[string]int{}
	reads := 0
	for _, d := range p.Recorders {
		names[d.Name]++
		for _, e := range d.Events {
			if e.Kind == flight.KServerRead {
				reads++
			}
		}
	}
	if names["server"] != 1 || names["structure"] != 1 {
		t.Fatalf("recorders = %v, want server and structure", names)
	}
	if reads == 0 {
		t.Fatal("no server.read events recorded for traced traffic")
	}

	// /debug/pprof and /debug/vars ride the same mux.
	if code, _ := adminGet(t, adminAddr, "/debug/pprof/"); code != 200 {
		t.Fatalf("pprof status %d", code)
	}
	if code, body := adminGet(t, adminAddr, "/debug/vars"); code != 200 || !strings.Contains(body, "pqd.server") {
		t.Fatalf("/debug/vars = %d, missing pqd.server", code)
	}

	cl.Close()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exitc:
		if code != 0 {
			t.Fatalf("run exited %d; stderr: %s", code, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	// The WAL and lease boot and drain lines bracket the run.
	for _, want := range []string{"pqd: wal: recovered", "pqd: wal: closed",
		"pqd: lease: ttl=", "pqd: lease: closed"} {
		if !strings.Contains(w.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, w.String())
		}
	}
}
