package main

import (
	"bytes"
	"errors"
	"os"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"skipqueue"
	"skipqueue/internal/client"
)

// addrWriter captures run()'s stdout and delivers the announced listen
// address as soon as it appears.
type addrWriter struct {
	mu     sync.Mutex
	buf    bytes.Buffer
	addrCh chan string
	sent   bool
}

var addrRe = regexp.MustCompile(`listening addr=(\S+)`)

func (w *addrWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(p)
	if !w.sent {
		if m := addrRe.FindSubmatch(w.buf.Bytes()); m != nil {
			w.sent = true
			w.addrCh <- string(m[1])
		}
	}
	return len(p), nil
}

func (w *addrWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestRunDrainsOnSIGTERM drives the real daemon entry point in-process:
// start it, serve traffic, deliver an actual SIGTERM, and require a clean
// drain (exit 0, late ops answered SHUTDOWN or refused, listener gone).
func TestRunDrainsOnSIGTERM(t *testing.T) {
	for _, backend := range []string{"skipqueue", "lockfree"} {
		t.Run(backend, func(t *testing.T) {
			w := &addrWriter{addrCh: make(chan string, 1)}
			var stderr bytes.Buffer
			exitc := make(chan int, 1)
			go func() {
				exitc <- run([]string{
					"-addr", "127.0.0.1:0",
					"-backend", backend,
					"-drain-window", "100ms",
					"-drain-timeout", "5s",
					"-admin", "127.0.0.1:0",
					"-flight", "256",
				}, w, &stderr)
			}()

			var addr string
			select {
			case addr = <-w.addrCh:
			case <-time.After(5 * time.Second):
				t.Fatalf("daemon never announced its address; stderr: %s", stderr.String())
			}
			// The admin line is printed before the data-plane line, so it is
			// already in the buffer.
			am := adminRe.FindStringSubmatch(w.String())
			if am == nil {
				t.Fatalf("daemon never announced its admin address:\n%s", w.String())
			}
			adminAddr := am[1]
			if code, _ := adminGet(t, adminAddr, "/healthz"); code != 200 {
				t.Fatalf("healthz before drain = %d, want 200", code)
			}

			cl, err := client.Dial(client.Config{Addr: addr, Retries: -1})
			if err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			for i := 0; i < 50; i++ {
				if err := cl.Insert(int64(i), []byte("x")); err != nil {
					t.Fatalf("Insert %d: %v", i, err)
				}
			}
			if n, err := cl.Len(); err != nil || n != 50 {
				t.Fatalf("Len = %d, %v; want 50", n, err)
			}

			if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
				t.Fatal(err)
			}

			// During the drain window, ops are answered SHUTDOWN (typed) or
			// the connection ends; either way nothing hangs.
			drainDeadline := time.Now().Add(3 * time.Second)
			for time.Now().Before(drainDeadline) {
				err := cl.Ping()
				if err == nil {
					continue // signal not yet observed by the server
				}
				if errors.Is(err, client.ErrShutdown) || errors.Is(err, client.ErrConn) || errors.Is(err, client.ErrBusy) {
					break
				}
				t.Fatalf("Ping during drain: unexpected error %v", err)
			}

			// The admin surface answers 503 through the drain and is retired
			// only after the data plane has answered its last frame.
			sawDraining := false
			for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
				code, err := adminGetErr(adminAddr, "/healthz")
				if err != nil {
					break // admin listener retired after the drain
				}
				if code == 503 {
					sawDraining = true
				}
				time.Sleep(2 * time.Millisecond)
			}
			if !sawDraining {
				t.Error("healthz never reported draining during the drain window")
			}

			select {
			case code := <-exitc:
				if code != 0 {
					t.Fatalf("run exited %d, want 0; stderr: %s", code, stderr.String())
				}
			case <-time.After(10 * time.Second):
				t.Fatal("daemon did not exit after SIGTERM")
			}
			if _, err := adminGetErr(adminAddr, "/healthz"); err == nil {
				t.Fatal("admin listener still serving after exit")
			}
			if !strings.Contains(w.String(), "draining") {
				t.Fatalf("stdout missing drain notice:\n%s", w.String())
			}
			if !strings.Contains(w.String(), "drained") {
				t.Fatalf("stdout missing drain completion:\n%s", w.String())
			}
			if !strings.Contains(w.String(), "flight: anomalies=") {
				t.Fatalf("stdout missing flight summary:\n%s", w.String())
			}
		})
	}
}

// TestRunBadBackend: an unknown backend is a usage error (exit 2).
func TestRunBadBackend(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-backend", "nope"}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown backend") {
		t.Fatalf("stderr missing backend error: %s", errOut.String())
	}
}

// TestRunAllBackends: every advertised backend selection constructs and
// serves at least one op end to end.
func TestRunAllBackends(t *testing.T) {
	for _, backend := range []string{"skipqueue", "relaxed", "lockfree", "glheap", "sharded", "elim", "elimsharded", "spray"} {
		t.Run(backend, func(t *testing.T) {
			b, inst, err := newBackend(backend, true, 0, 0, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			b.Push(5, []byte("v"))
			if p, v, ok := b.Pop(); !ok || p != 5 || string(v) != "v" {
				t.Fatalf("Pop = %d/%q/%v", p, v, ok)
			}
			if !inst.Snapshot().Enabled {
				t.Fatal("metrics snapshot not enabled")
			}
		})
	}
}

// TestShardedBackendShards: -shards is honored, and the zero default
// resolves to at least two shards.
func TestShardedBackendShards(t *testing.T) {
	b, _, err := newBackend("sharded", false, 6, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.(*skipqueue.ShardedPQ[[]byte]).Shards(); got != 6 {
		t.Fatalf("Shards = %d, want 6", got)
	}
	b, _, err = newBackend("sharded", false, 0, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.(*skipqueue.ShardedPQ[[]byte]).Shards(); got < 2 {
		t.Fatalf("default Shards = %d, want >= 2", got)
	}
}

// TestElimBackendSlots: -elim-slots is honored on both elimination
// backends, and the zero default resolves to at least four slots.
func TestElimBackendSlots(t *testing.T) {
	b, _, err := newBackend("elim", false, 0, 6, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.(*skipqueue.ElimPQ[[]byte]).Slots(); got != 6 {
		t.Fatalf("Slots = %d, want 6", got)
	}
	b, _, err = newBackend("elimsharded", false, 3, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.(*skipqueue.ElimPQ[[]byte]).Slots(); got < 4 {
		t.Fatalf("default Slots = %d, want >= 4", got)
	}
}

// TestSprayBackendK: -spray-k is honored, and the zero default resolves
// to at least two deleters' worth of spray.
func TestSprayBackendK(t *testing.T) {
	b, _, err := newBackend("spray", false, 0, 0, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.(*skipqueue.SprayPQ[[]byte]).K(); got != 16 {
		t.Fatalf("K = %d, want 16", got)
	}
	b, _, err = newBackend("spray", false, 0, 0, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := b.(*skipqueue.SprayPQ[[]byte]).K(); got < 2 {
		t.Fatalf("default K = %d, want >= 2", got)
	}
}
