package main

import (
	"bytes"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"skipqueue/internal/client"
)

// TestRunVersion: -version prints the build identity and exits 0 without
// opening any listener.
func TestRunVersion(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-version"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "go:") {
		t.Fatalf("version output missing toolchain line:\n%s", out.String())
	}
	if strings.Contains(out.String(), "listening") {
		t.Fatalf("-version started the daemon:\n%s", out.String())
	}
}

// TestRunLeaseMode boots the daemon with the lease protocol over a WAL,
// exercises a full grant/ack plus an in-flight lease, and requires the
// drain to nack the in-flight lease back so the element survives into
// the WAL's final snapshot.
func TestRunLeaseMode(t *testing.T) {
	dir := t.TempDir()
	w := &addrWriter{addrCh: make(chan string, 1)}
	var stderr bytes.Buffer
	exitc := make(chan int, 1)
	go func() {
		exitc <- run([]string{
			"-addr", "127.0.0.1:0",
			"-wal-dir", dir,
			"-lease",
			"-lease-ttl", "1h", // only the drain may release the in-flight lease
			"-lease-tick", "5ms",
			"-max-deliveries", "5",
			"-drain-window", "100ms",
			"-drain-timeout", "5s",
			"-admin", "127.0.0.1:0",
		}, w, &stderr)
	}()

	var addr string
	select {
	case addr = <-w.addrCh:
	case <-time.After(5 * time.Second):
		t.Fatalf("daemon never announced its address; stderr: %s", stderr.String())
	}
	if !strings.Contains(w.String(), "pqd: lease: ttl=1h0m0s") || !strings.Contains(w.String(), "durable=true") {
		t.Fatalf("missing lease boot line:\n%s", w.String())
	}

	cl, err := client.Dial(client.Config{Addr: addr, Retries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Insert(1, []byte("acked")); err != nil {
		t.Fatal(err)
	}
	if err := cl.Insert(2, []byte("in-flight")); err != nil {
		t.Fatal(err)
	}
	if err := cl.InsertDelay(3, time.Hour, []byte("parked")); err != nil {
		t.Fatal(err)
	}
	l, found, err := cl.PopLease(0)
	if err != nil || !found || string(l.Value) != "acked" {
		t.Fatalf("PopLease = %v/%v/%v", l, found, err)
	}
	if err := l.Ack(); err != nil {
		t.Fatal(err)
	}
	if _, found, err = cl.PopLease(0); err != nil || !found {
		t.Fatalf("second PopLease = %v/%v", found, err)
	}
	// The second lease stays outstanding across the drain.

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exitc:
		if code != 0 {
			t.Fatalf("run exited %d; stderr: %s\nstdout:%s", code, stderr.String(), w.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	if !strings.Contains(w.String(), "pqd: lease: closed outstanding=0") {
		t.Fatalf("drain did not release the in-flight lease:\n%s", w.String())
	}

	// Restart on the same WAL: the acked element is gone for good; the
	// nacked-back element and the parked delayed element both survived.
	w2 := &addrWriter{addrCh: make(chan string, 1)}
	exitc2 := make(chan int, 1)
	go func() {
		exitc2 <- run([]string{
			"-addr", "127.0.0.1:0",
			"-wal-dir", dir,
			"-lease", "-lease-tick", "5ms",
			"-drain-window", "50ms",
		}, w2, &stderr)
	}()
	select {
	case addr = <-w2.addrCh:
	case <-time.After(5 * time.Second):
		t.Fatalf("restart never announced; stderr: %s", stderr.String())
	}
	cl2, err := client.Dial(client.Config{Addr: addr, Retries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	l, found, err = cl2.PopLease(0)
	if err != nil || !found || string(l.Value) != "in-flight" {
		t.Fatalf("recovered PopLease = %v/%v/%v, want the nacked-back element", l, found, err)
	}
	if err := l.Ack(); err != nil {
		t.Fatal(err)
	}
	// Only the hour-delayed element remains, still invisible.
	if _, found, err := cl2.PopLease(0); err != nil || found {
		t.Fatalf("immature element visible after recovery: %v/%v", found, err)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exitc2:
		if code != 0 {
			t.Fatalf("restart exited %d; stderr: %s", code, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("restart did not exit after SIGTERM")
	}
}
