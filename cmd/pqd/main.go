// Command pqd is the priority-queue daemon: it serves one queue backend
// over TCP using the frame protocol of internal/wire (see docs/SERVER.md
// for the protocol and operational semantics).
//
// Backend selection mirrors the repository's queue families:
//
//	pqd -backend skipqueue   # the paper's strict SkipQueue (default)
//	pqd -backend relaxed     # SkipQueue without the timestamp mechanism
//	pqd -backend lockfree    # the CAS-based successor
//	pqd -backend glheap      # single-lock binary heap baseline
//	pqd -backend sharded     # relaxed choice-of-two multi-queue (-shards)
//	pqd -backend elim        # elimination front-end over skipqueue (-elim-slots)
//	pqd -backend elimsharded # elimination front-end over sharded
//	pqd -backend spray       # SprayList-style relaxed near-min deletion (-spray-k)
//
// Backpressure: -max-conns bounds concurrent connections (excess gets one
// BUSY frame), -max-inflight bounds frames applied per connection between
// response flushes.
//
// Observability: -admin serves the operational HTTP surface on its own
// listener (see internal/admin and docs/OBSERVABILITY.md) — /metrics in
// Prometheus text format, /healthz for drain-aware load balancing,
// /debug/flight for flight-recorder dumps, /debug/vars (expvar) and
// /debug/pprof. -metrics is the backward-compatible alias for -admin.
// -flight sizes the per-shard flight-recorder rings (0 = off) and -slo
// sets the per-frame latency budget whose breach captures an anomaly dump.
//
// On SIGTERM or SIGINT pqd drains: it stops accepting, answers frames
// already received normally, replies SHUTDOWN to frames arriving during
// the drain window, then closes connections and exits 0. The admin
// listener answers /healthz with 503 from the first moment of the drain
// and is shut down only after the data plane has answered its last frame,
// so the final drain state remains scrapeable.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"skipqueue"
	"skipqueue/internal/admin"
	"skipqueue/internal/flight"
	"skipqueue/internal/lease"
	"skipqueue/internal/obs"
	"skipqueue/internal/server"
	"skipqueue/internal/wal"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// newBackend builds the queue family named by -backend. The second return
// is the same object's observability surface. shards only applies to the
// sharded-backed backends (0 = the default of two shards per GOMAXPROCS);
// elimSlots only to the elimination front-ends (0 = one slot per core);
// sprayK only to the spray backend (0 = GOMAXPROCS); fr, when non-nil,
// receives the structure's contention events.
func newBackend(name string, metrics bool, shards, elimSlots, sprayK int, fr *flight.Recorder) (server.Backend, skipqueue.Instrumented, error) {
	var opts []skipqueue.Option
	if metrics {
		opts = append(opts, skipqueue.WithMetrics())
	}
	if fr != nil {
		opts = append(opts, skipqueue.WithFlight(fr))
	}
	switch name {
	case "skipqueue":
		pq := skipqueue.NewPQ[[]byte](opts...)
		return pq, pq, nil
	case "relaxed":
		pq := skipqueue.NewPQ[[]byte](append(opts, skipqueue.WithRelaxed())...)
		return pq, pq, nil
	case "lockfree":
		pq := skipqueue.NewLockFreePQ[[]byte](opts...)
		return pq, pq, nil
	case "glheap":
		pq := skipqueue.NewGlobalHeapPQ[[]byte](opts...)
		return pq, pq, nil
	case "sharded":
		pq := skipqueue.NewShardedPQ[[]byte](shards, opts...)
		return pq, pq, nil
	case "elim":
		pq := skipqueue.NewElimPQ[[]byte](elimSlots, opts...)
		return pq, pq, nil
	case "elimsharded":
		pq := skipqueue.NewElimShardedPQ[[]byte](elimSlots, shards, opts...)
		return pq, pq, nil
	case "spray":
		pq := skipqueue.NewSprayPQ[[]byte](sprayK, opts...)
		return pq, pq, nil
	}
	return nil, nil, fmt.Errorf("unknown backend %q (want skipqueue, relaxed, lockfree, glheap, sharded, elim, elimsharded or spray)", name)
}

// publish registers fn under name in the expvar registry, tolerating
// re-registration (run may be invoked more than once in tests).
func publish(name string, fn func() obs.Snapshot) {
	if expvar.Get(name) == nil {
		obs.Publish(name, fn)
	}
}

// run is main minus os.Exit, factored out so tests can drive the daemon —
// including its signal handling — in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pqd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "127.0.0.1:9400", "TCP listen address")
		backendName = fs.String("backend", "skipqueue", "queue backend: skipqueue, relaxed, lockfree, glheap, sharded, elim, elimsharded, spray")
		shards      = fs.Int("shards", 0, "shard count for the sharded backends (0 = two per GOMAXPROCS)")
		elimSlots   = fs.Int("elim-slots", 0, "exchanger slots for the elim backends (0 = one per core)")
		sprayK      = fs.Int("spray-k", 0, "contention width the spray backend shapes its walk for (0 = GOMAXPROCS)")
		maxConns    = fs.Int("max-conns", server.DefaultMaxConns, "max concurrent connections; excess is refused with BUSY")
		maxInflight = fs.Int("max-inflight", server.DefaultMaxInflight, "max frames applied per connection between response flushes")
		maxFrame    = fs.Int("max-frame", 0, "max accepted frame size in bytes (0 = protocol default, 1MiB)")
		workers     = fs.Int("workers", 0, "apply-loop workers connections shard onto (0 = GOMAXPROCS)")
		batchMax    = fs.Int("batch-max", 0, "max operations accepted per OpBatch frame (0 = default 1024)")
		batchLinger = fs.Duration("batch-linger", 0, "how long a worker waits for more connections' batches to join one apply run (0 = no linger)")
		drainWindow = fs.Duration("drain-window", server.DefaultDrainWindow, "how long a drain keeps answering late frames with SHUTDOWN")
		drainWait   = fs.Duration("drain-timeout", 5*time.Second, "total shutdown budget before connections are force-closed")
		adminAddr   = fs.String("admin", "", "serve the admin surface (/metrics, /healthz, /debug/flight, /debug/pprof, /debug/vars) on this address; also enables probe collection")
		metricsAddr = fs.String("metrics", "", "alias for -admin (backward compatible)")
		flightSlots = fs.Int("flight", 0, "flight-recorder ring slots per shard (0 = recorder off)")
		slo         = fs.Duration("slo", 0, "per-frame server latency budget; a traced frame exceeding it captures an anomaly dump (0 = off)")
		walDir      = fs.String("wal-dir", "", "write-ahead-log directory; enables durability (empty = no WAL, in-memory only)")
		walMode     = fs.String("wal-mode", "sync", "WAL durability mode: sync (ACK after fsync) or async (ACK immediately, fsync in background)")
		walSyncIvl  = fs.Duration("wal-sync-interval", wal.DefaultSyncInterval, "max time appended WAL records wait for their group-commit fsync")
		walSegBytes = fs.Int64("wal-segment-bytes", wal.DefaultSegmentBytes, "WAL segment rotation threshold in bytes")
		walSnapSegs = fs.Int("wal-snapshot-segments", 0, "segments retained before a rotation triggers snapshot compaction (0 = default 4, negative = never)")
		leaseOn     = fs.Bool("lease", false, "enable the at-least-once lease protocol (PopLease/Ack/Nack/Extend/InsertDelay)")
		leaseTTL    = fs.Duration("lease-ttl", 30*time.Second, "default lease duration when the client does not request one")
		leaseTick   = fs.Duration("lease-tick", 10*time.Millisecond, "lease expiry sweep granularity")
		maxDeliver  = fs.Int("max-deliveries", 0, "deliveries before an unacked element is dead-lettered (0 = never)")
		version     = fs.Bool("version", false, "print build information and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprint(stdout, admin.BuildInfoText())
		return 0
	}
	if *adminAddr == "" {
		*adminAddr = *metricsAddr
	}

	metrics := *adminAddr != ""
	var serverFR, structFR *flight.Recorder
	if *flightSlots > 0 {
		serverFR = flight.New("server", 0, *flightSlots)
		structFR = flight.New("structure", 0, *flightSlots)
	}
	backend, inst, err := newBackend(*backendName, metrics, *shards, *elimSlots, *sprayK, structFR)
	if err != nil {
		fmt.Fprintf(stderr, "pqd: %v\n", err)
		return 2
	}

	// With -wal-dir the selected backend is wrapped in the durable
	// decorator: state recovered from disk is rebuilt into it before the
	// listener opens, and the server gates ACKs on the wrapper's Commit.
	var durable *wal.Queue
	if *walDir != "" {
		mode, err := wal.ParseMode(*walMode)
		if err != nil {
			fmt.Fprintf(stderr, "pqd: %v\n", err)
			return 2
		}
		q, rec, err := wal.OpenQueue(wal.Config{
			Dir:              *walDir,
			Mode:             mode,
			SyncInterval:     *walSyncIvl,
			SegmentBytes:     *walSegBytes,
			SnapshotSegments: *walSnapSegs,
			Metrics:          metrics,
			Flight:           serverFR,
		}, backend)
		if err != nil {
			fmt.Fprintf(stderr, "pqd: wal: %v\n", err)
			return 1
		}
		durable = q
		backend = q
		fmt.Fprintf(stdout, "pqd: wal: recovered dir=%s mode=%s records=%d items=%d snapshot_items=%d torn=%v\n",
			*walDir, *walMode, rec.Records, len(rec.Items), rec.SnapshotItems, rec.TornTail)
	}

	// With -lease the (possibly WAL-wrapped) backend is decorated once
	// more: the table owns delivery counts, delayed visibility, and the
	// dead-letter queue, and the server exposes the protocol opcodes.
	// Over a wal.Queue the table's grants/acks/requeues are durable.
	var leaseTbl *lease.Table
	if *leaseOn {
		leaseTbl = lease.New(lease.Config{
			TTL:           *leaseTTL,
			Tick:          *leaseTick,
			MaxDeliveries: *maxDeliver,
			Metrics:       metrics,
			Flight:        serverFR,
		}, backend)
		backend = leaseTbl
		fmt.Fprintf(stdout, "pqd: lease: ttl=%v tick=%v max-deliveries=%d durable=%v\n",
			*leaseTTL, *leaseTick, *maxDeliver, leaseTbl.Durable())
	}

	srvCfg := server.Config{
		Backend:     backend,
		MaxConns:    *maxConns,
		MaxInflight: *maxInflight,
		MaxFrame:    *maxFrame,
		DrainWindow: *drainWindow,
		Metrics:     metrics,
		Flight:      serverFR,
		SLO:         *slo,
		Workers:     *workers,
		BatchMaxOps: *batchMax,
		BatchLinger: *batchLinger,
		Lease:       leaseTbl,
	}
	if durable != nil {
		srvCfg.WAL = durable
	}
	srv := server.New(srvCfg)

	// draining feeds /healthz; it flips the instant a drain signal arrives,
	// before the data plane starts refusing, so load balancers stop routing
	// as early as possible.
	var draining atomic.Bool

	var adm *admin.Server
	var admErr chan error
	if *adminAddr != "" {
		publish("pqd.server", srv.Snapshot)
		publish("pqd.batch", srv.BatchSnapshot)
		publish("pqd.backend", inst.Snapshot)
		snapFns := []func() obs.Snapshot{srv.Snapshot, srv.BatchSnapshot, inst.Snapshot}
		if durable != nil {
			publish("pqd.wal", durable.Log().Snapshot)
			snapFns = append(snapFns, durable.Log().Snapshot)
		}
		if leaseTbl != nil {
			publish("pqd.lease", leaseTbl.Snapshot)
			snapFns = append(snapFns, leaseTbl.Snapshot)
		}
		snapshots := func() []obs.Snapshot {
			out := make([]obs.Snapshot, len(snapFns))
			for i, fn := range snapFns {
				out[i] = fn()
			}
			return out
		}
		adm = admin.New(admin.Config{
			Namespace: "pqd",
			Snapshots: snapshots,
			Draining:  draining.Load,
			Flight:    []*flight.Recorder{serverFR, structFR},
		})
		mln, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			fmt.Fprintf(stderr, "pqd: admin listener: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "pqd: admin addr=%s endpoints=/metrics,/healthz,/buildinfo,/debug/flight,/debug/pprof,/debug/vars\n", mln.Addr())
		admErr = make(chan error, 1)
		go func() { admErr <- adm.Serve(mln) }()
	}

	// stopAdmin retires the admin listener; called only after the data
	// plane is fully done, so the last drain state stays scrapeable until
	// the very end.
	stopAdmin := func() {
		if adm == nil {
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		adm.Shutdown(ctx)
		cancel()
		<-admErr
	}

	// Register the drain trigger before announcing the address, so a
	// SIGTERM arriving the moment the address is known is never fatal.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	defer signal.Stop(sigc)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "pqd: listen: %v\n", err)
		stopAdmin()
		return 1
	}
	fmt.Fprintf(stdout, "pqd: listening addr=%s backend=%s max-conns=%d max-inflight=%d\n",
		ln.Addr(), *backendName, *maxConns, *maxInflight)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case sig := <-sigc:
		draining.Store(true)
		fmt.Fprintf(stdout, "pqd: %v: draining (window=%v budget=%v)\n", sig, *drainWindow, *drainWait)
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		err := srv.Shutdown(ctx)
		cancel()
		<-serveErr
		// Shutdown has nacked outstanding leases back; the sweeper can
		// stop now that no lease can expire.
		if leaseTbl != nil {
			leaseTbl.Close()
			fmt.Fprintf(stdout, "pqd: lease: closed outstanding=%d dead=%d\n",
				leaseTbl.Outstanding(), leaseTbl.DeadLen())
		}
		// The data plane is quiet; the WAL's last duty is a final sync and
		// snapshot so the next boot replays a snapshot, not a long log tail.
		if durable != nil {
			if werr := durable.Close(); werr != nil {
				fmt.Fprintf(stderr, "pqd: wal close: %v\n", werr)
				if err == nil {
					err = werr
				}
			} else {
				fmt.Fprintf(stdout, "pqd: wal: closed items=%d\n", durable.Len())
			}
		}
		// Only now retire the admin surface, so the final drain state —
		// including the closing snapshot's probes — stays scrapeable.
		stopAdmin()
		if metrics {
			snap := srv.Snapshot()
			fmt.Fprintf(stdout, "pqd: drained: frames=%d shutdown_replies=%d drain=%v backend_len=%d\n",
				snap.Counter("frames"), snap.Counter("drain.shutdown_replies"),
				time.Duration(snap.Counter("drain.ns")), backend.Len())
		} else {
			fmt.Fprintf(stdout, "pqd: drained: backend_len=%d\n", backend.Len())
		}
		if serverFR != nil {
			fmt.Fprintf(stdout, "pqd: flight: anomalies=%d\n", serverFR.Anomalies())
		}
		if err != nil {
			fmt.Fprintf(stderr, "pqd: drain incomplete: %v\n", err)
			return 1
		}
		return 0
	case err := <-serveErr:
		draining.Store(true)
		if leaseTbl != nil {
			leaseTbl.Close()
		}
		if durable != nil {
			durable.Close()
		}
		stopAdmin()
		if err != nil && !errors.Is(err, server.ErrServerClosed) {
			fmt.Fprintf(stderr, "pqd: serve: %v\n", err)
			return 1
		}
		return 0
	}
}
