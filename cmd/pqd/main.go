// Command pqd is the priority-queue daemon: it serves one queue backend
// over TCP using the frame protocol of internal/wire (see docs/SERVER.md
// for the protocol and operational semantics).
//
// Backend selection mirrors the repository's queue families:
//
//	pqd -backend skipqueue   # the paper's strict SkipQueue (default)
//	pqd -backend relaxed     # SkipQueue without the timestamp mechanism
//	pqd -backend lockfree    # the CAS-based successor
//	pqd -backend glheap      # single-lock binary heap baseline
//	pqd -backend sharded     # relaxed choice-of-two multi-queue (-shards)
//	pqd -backend elim        # elimination front-end over skipqueue (-elim-slots)
//	pqd -backend elimsharded # elimination front-end over sharded
//
// Backpressure: -max-conns bounds concurrent connections (excess gets one
// BUSY frame), -max-inflight bounds frames applied per connection between
// response flushes. -metrics exposes the server's and backend's probe
// snapshots as JSON on /debug/vars (expvar) at the given address.
//
// On SIGTERM or SIGINT pqd drains: it stops accepting, answers frames
// already received normally, replies SHUTDOWN to frames arriving during
// the drain window, then closes connections and exits 0.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"skipqueue"
	"skipqueue/internal/obs"
	"skipqueue/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// newBackend builds the queue family named by -backend. The second return
// is the same object's observability surface. shards only applies to the
// sharded-backed backends (0 = the default of two shards per GOMAXPROCS);
// elimSlots only to the elimination front-ends (0 = one slot per core).
func newBackend(name string, metrics bool, shards, elimSlots int) (server.Backend, skipqueue.Instrumented, error) {
	var opts []skipqueue.Option
	if metrics {
		opts = append(opts, skipqueue.WithMetrics())
	}
	switch name {
	case "skipqueue":
		pq := skipqueue.NewPQ[[]byte](opts...)
		return pq, pq, nil
	case "relaxed":
		pq := skipqueue.NewPQ[[]byte](append(opts, skipqueue.WithRelaxed())...)
		return pq, pq, nil
	case "lockfree":
		pq := skipqueue.NewLockFreePQ[[]byte](opts...)
		return pq, pq, nil
	case "glheap":
		pq := skipqueue.NewGlobalHeapPQ[[]byte](opts...)
		return pq, pq, nil
	case "sharded":
		pq := skipqueue.NewShardedPQ[[]byte](shards, opts...)
		return pq, pq, nil
	case "elim":
		pq := skipqueue.NewElimPQ[[]byte](elimSlots, opts...)
		return pq, pq, nil
	case "elimsharded":
		pq := skipqueue.NewElimShardedPQ[[]byte](elimSlots, shards, opts...)
		return pq, pq, nil
	}
	return nil, nil, fmt.Errorf("unknown backend %q (want skipqueue, relaxed, lockfree, glheap, sharded, elim or elimsharded)", name)
}

// publish registers fn under name in the expvar registry, tolerating
// re-registration (run may be invoked more than once in tests).
func publish(name string, fn func() obs.Snapshot) {
	if expvar.Get(name) == nil {
		obs.Publish(name, fn)
	}
}

// run is main minus os.Exit, factored out so tests can drive the daemon —
// including its signal handling — in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pqd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr        = fs.String("addr", "127.0.0.1:9400", "TCP listen address")
		backendName = fs.String("backend", "skipqueue", "queue backend: skipqueue, relaxed, lockfree, glheap, sharded, elim, elimsharded")
		shards      = fs.Int("shards", 0, "shard count for the sharded backends (0 = two per GOMAXPROCS)")
		elimSlots   = fs.Int("elim-slots", 0, "exchanger slots for the elim backends (0 = one per core)")
		maxConns    = fs.Int("max-conns", server.DefaultMaxConns, "max concurrent connections; excess is refused with BUSY")
		maxInflight = fs.Int("max-inflight", server.DefaultMaxInflight, "max frames applied per connection between response flushes")
		maxFrame    = fs.Int("max-frame", 0, "max accepted frame size in bytes (0 = protocol default, 1MiB)")
		drainWindow = fs.Duration("drain-window", server.DefaultDrainWindow, "how long a drain keeps answering late frames with SHUTDOWN")
		drainWait   = fs.Duration("drain-timeout", 5*time.Second, "total shutdown budget before connections are force-closed")
		metricsAddr = fs.String("metrics", "", "serve expvar metrics over HTTP on this address (also enables probe collection)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	metrics := *metricsAddr != ""
	backend, inst, err := newBackend(*backendName, metrics, *shards, *elimSlots)
	if err != nil {
		fmt.Fprintf(stderr, "pqd: %v\n", err)
		return 2
	}

	srv := server.New(server.Config{
		Backend:     backend,
		MaxConns:    *maxConns,
		MaxInflight: *maxInflight,
		MaxFrame:    *maxFrame,
		DrainWindow: *drainWindow,
		Metrics:     metrics,
	})

	if metrics {
		publish("pqd.server", srv.Snapshot)
		publish("pqd.backend", inst.Snapshot)
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fmt.Fprintf(stderr, "pqd: metrics listener: %v\n", err)
			return 1
		}
		defer mln.Close()
		fmt.Fprintf(stdout, "pqd: metrics on http://%s/debug/vars\n", mln.Addr())
		go http.Serve(mln, nil) // expvar's handler lives on DefaultServeMux
	}

	// Register the drain trigger before announcing the address, so a
	// SIGTERM arriving the moment the address is known is never fatal.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, os.Interrupt)
	defer signal.Stop(sigc)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "pqd: listen: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "pqd: listening addr=%s backend=%s max-conns=%d max-inflight=%d\n",
		ln.Addr(), *backendName, *maxConns, *maxInflight)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case sig := <-sigc:
		fmt.Fprintf(stdout, "pqd: %v: draining (window=%v budget=%v)\n", sig, *drainWindow, *drainWait)
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		err := srv.Shutdown(ctx)
		cancel()
		<-serveErr
		if metrics {
			snap := srv.Snapshot()
			fmt.Fprintf(stdout, "pqd: drained: frames=%d shutdown_replies=%d drain=%v backend_len=%d\n",
				snap.Counter("frames"), snap.Counter("drain.shutdown_replies"),
				time.Duration(snap.Counter("drain.ns")), backend.Len())
		} else {
			fmt.Fprintf(stdout, "pqd: drained: backend_len=%d\n", backend.Len())
		}
		if err != nil {
			fmt.Fprintf(stderr, "pqd: drain incomplete: %v\n", err)
			return 1
		}
		return 0
	case err := <-serveErr:
		if err != nil && !errors.Is(err, server.ErrServerClosed) {
			fmt.Fprintf(stderr, "pqd: serve: %v\n", err)
			return 1
		}
		return 0
	}
}
