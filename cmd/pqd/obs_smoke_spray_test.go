package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"skipqueue/internal/client"
)

// TestObsSmokeSpray is the spray backend's slice of the observability
// smoke: boot the daemon with -backend spray, drive real traffic, and
// require every metric in testdata/metrics_spray.golden — the published
// spray catalog (spray.walks, spray.collisions, claim.retries,
// scan.fallbacks, the pop histogram) merged with the lock-free
// substrate's probes under the skipqueue.spray set.
func TestObsSmokeSpray(t *testing.T) {
	w := &addrWriter{addrCh: make(chan string, 1)}
	var stderr bytes.Buffer
	exitc := make(chan int, 1)
	go func() {
		exitc <- run([]string{
			"-addr", "127.0.0.1:0",
			"-admin", "127.0.0.1:0",
			"-backend", "spray",
			"-spray-k", "4",
			"-flight", "1024",
			"-drain-window", "50ms",
		}, w, &stderr)
	}()
	var addr string
	select {
	case addr = <-w.addrCh:
	case <-time.After(5 * time.Second):
		t.Fatalf("daemon never announced its address; stderr: %s", stderr.String())
	}
	am := adminRe.FindStringSubmatch(w.String())
	if am == nil {
		t.Fatalf("daemon never announced its admin address:\n%s", w.String())
	}
	adminAddr := am[1]

	cl, err := client.Dial(client.Config{Addr: addr})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	const ops = 200
	for i := 0; i < ops; i++ {
		if err := cl.Insert(int64(i%37), []byte("spray-smoke")); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	for i := 0; i < ops; i++ {
		if _, _, found, err := cl.DeleteMin(); err != nil || !found {
			t.Fatalf("DeleteMin %d: found=%v err=%v", i, found, err)
		}
	}
	// One extra pop drains into the EMPTY fallback so pop.empties moves.
	if _, _, found, err := cl.DeleteMin(); err != nil || found {
		t.Fatalf("drained queue: found=%v err=%v", found, err)
	}

	code, body := adminGet(t, adminAddr, "/metrics")
	if code != 200 {
		t.Fatalf("metrics status %d", code)
	}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if !promLine.MatchString(line) {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "metrics_spray.golden"))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range strings.Fields(string(golden)) {
		if !strings.Contains(body, name) {
			t.Errorf("exposition missing golden metric %s", name)
		}
	}
	if t.Failed() {
		t.Fatalf("full exposition:\n%s", body)
	}
	// The traffic above ran a real workload, so the scan path must have
	// delivered every element and certified the final EMPTY.
	for _, want := range []string{
		"pqd_skipqueue_spray_scan_pops_total 200",
		"pqd_skipqueue_spray_pop_empties_total 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if t.Failed() {
		t.Fatalf("full exposition:\n%s", body)
	}

	cl.Close()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exitc:
		if code != 0 {
			t.Fatalf("run exited %d; stderr: %s", code, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
}
