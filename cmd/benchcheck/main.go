// Command benchcheck is the bench regression guard behind `make
// bench-check`: it compares fresh benchmark results against the recorded
// baselines and exits non-zero — loudly — when throughput regressed by
// more than the tolerance.
//
// Two comparisons, each optional:
//
//   - Server macro-benchmark: -server-baseline (the committed
//     BENCH_server.json) against -server-fresh (a file just written by
//     cmd/pqload). The compared figure is throughput_ops_per_s; fresh
//     below (1-tolerance)×baseline fails.
//
//   - Native micro-benchmarks: -native-baseline (the committed
//     BENCH_baseline.json). benchcheck reruns each benchmark recorded in
//     the baseline via `go test -bench` and compares median ns/op; fresh
//     above (1+tolerance)×baseline fails (more ns per op = less
//     throughput).
//
//   - Structure head-to-heads: -native-report (a nativebench report,
//     either raw text or the normalized JSON, e.g. the committed
//     BENCH_spray.json) plus -require, a comma list of
//     "Challenger>=Champion" pairs. The challenger's ops/sec must reach at
//     least (1-tolerance)×champion — the gate that keeps a relaxed
//     backend honest about actually beating the strict queue it relaxes.
//
//   - Throughput ratio gates: -ratio-base and -ratio-fresh name two pqload
//     JSON reports; -ratio-min R requires fresh ≥ R×base. This is how the
//     batched data plane proves its multiple over the single-op baseline
//     (BENCH_server_batch.json vs BENCH_server.json) instead of merely not
//     regressing.
//
// benchcheck is also the normalizer that keeps the bench artifacts
// machine-readable: `-normalize report.txt -normalize-out BENCH_x.json`
// parses a nativebench text report into the JSON shape the trajectory
// tooling (and -native-report) reads.
//
// The default tolerance is deliberately wide (30%): the guard exists to
// catch structural regressions — an accidental O(n) scan, a lost fast
// path — not scheduler noise on a shared box.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type serverReport struct {
	Throughput float64 `json:"throughput_ops_per_s"`
	Ops        uint64  `json:"ops"`
	Errors     uint64  `json:"errors"`
}

// nativeReportJSON is the normalized form of a nativebench text report:
// the workload header, and per structure the throughput plus the verbatim
// latency summary lines for humans reading the artifact.
type nativeReportJSON struct {
	Bench      string            `json:"bench"`
	Workload   map[string]string `json:"workload,omitempty"`
	Structures []structureResult `json:"structures"`
}

type structureResult struct {
	Name      string  `json:"name"`
	OpsPerSec float64 `json:"ops_per_s"`
	Insert    string  `json:"insert,omitempty"`
	DeleteMin string  `json:"deletemin,omitempty"`
}

type nativeBaseline struct {
	Command    string                     `json:"command"`
	Benchmarks map[string]nativeRecord    `json:"benchmarks"`
	Micro      map[string]json.RawMessage `json:"micro"`
}

type nativeRecord struct {
	MedianNsPerOp float64 `json:"median_ns_per_op"`
}

func readJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

// benchLine matches `BenchmarkName-4  12345  678.9 ns/op ...`, capturing
// the name (GOMAXPROCS suffix stripped) and the ns/op figure.
var benchLine = regexp.MustCompile(`(?m)^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// reportLine matches a nativebench throughput line, `StrictPQ  1234567 ops/sec`.
var reportLine = regexp.MustCompile(`(?m)^(\S+)\s+([0-9]+) ops/sec`)

func median(xs []float64) float64 {
	sort.Float64s(xs)
	return xs[len(xs)/2]
}

// parseNativeText turns a nativebench text report into its normalized JSON
// shape: the key=value workload header, then one entry per `Name N ops/sec`
// line with the immediately following insert/deletemin summary lines kept
// verbatim. Metrics sections (`== set ==`) are skipped.
func parseNativeText(data []byte) nativeReportJSON {
	rep := nativeReportJSON{Bench: "nativebench head-to-head (cmd/nativebench)"}
	var cur *structureResult
	for _, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		switch {
		case rep.Workload == nil && rep.Structures == nil && strings.Contains(trimmed, "="):
			rep.Workload = map[string]string{}
			for _, kv := range strings.Fields(trimmed) {
				if k, v, ok := strings.Cut(kv, "="); ok {
					rep.Workload[k] = v
				}
			}
		case reportLine.MatchString(line):
			m := reportLine.FindStringSubmatch(line)
			ops, _ := strconv.ParseFloat(m[2], 64)
			rep.Structures = append(rep.Structures, structureResult{Name: m[1], OpsPerSec: ops})
			cur = &rep.Structures[len(rep.Structures)-1]
		case cur != nil && strings.HasPrefix(trimmed, "insert:"):
			cur.Insert = strings.TrimSpace(strings.TrimPrefix(trimmed, "insert:"))
		case cur != nil && strings.HasPrefix(trimmed, "deletemin:"):
			cur.DeleteMin = strings.TrimSpace(strings.TrimPrefix(trimmed, "deletemin:"))
			cur = nil
		default:
			cur = nil
		}
	}
	return rep
}

// reportRates extracts structure→ops/sec from a nativebench report, JSON
// (the normalized artifact) or raw text.
func reportRates(data []byte) map[string]float64 {
	rates := map[string]float64{}
	var rep nativeReportJSON
	if err := json.Unmarshal(data, &rep); err == nil && len(rep.Structures) > 0 {
		for _, s := range rep.Structures {
			rates[s.Name] = s.OpsPerSec
		}
		return rates
	}
	for _, m := range reportLine.FindAllStringSubmatch(string(data), -1) {
		if ops, err := strconv.ParseFloat(m[2], 64); err == nil {
			rates[m[1]] = ops
		}
	}
	return rates
}

func main() {
	var (
		tolerance      = flag.Float64("tolerance", 0.30, "allowed relative regression before failing")
		serverBaseline = flag.String("server-baseline", "", "committed pqload report (BENCH_server.json)")
		serverFresh    = flag.String("server-fresh", "", "fresh pqload report to compare against -server-baseline")
		nativeBase     = flag.String("native-baseline", "", "committed go-test bench medians (BENCH_baseline.json); reruns and compares")
		nativeReport   = flag.String("native-report", "", "nativebench report, text or normalized JSON (e.g. BENCH_spray.json), for -require head-to-heads")
		require        = flag.String("require", "Spray>=StrictPQ", "comma list of Challenger>=Champion throughput requirements for -native-report")
		benchTime      = flag.String("benchtime", "0.5s", "benchtime for the native rerun")
		count          = flag.Int("count", 5, "repetitions for the native rerun (median is compared)")
		normalize      = flag.String("normalize", "", "nativebench text report to normalize into JSON")
		normalizeOut   = flag.String("normalize-out", "", "where -normalize writes the JSON (default: stdout)")
		ratioBase      = flag.String("ratio-base", "", "pqload JSON report the ratio gate divides by")
		ratioFresh     = flag.String("ratio-fresh", "", "pqload JSON report that must reach -ratio-min × -ratio-base")
		ratioMin       = flag.Float64("ratio-min", 0, "required throughput multiple for the ratio gate (0 = off)")
	)
	flag.Parse()

	failed := false
	fail := func(format string, args ...any) {
		failed = true
		fmt.Fprintf(os.Stderr, "benchcheck: REGRESSION: "+format+"\n", args...)
	}

	if *normalize != "" {
		data, err := os.ReadFile(*normalize)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(2)
		}
		rep := parseNativeText(data)
		if len(rep.Structures) == 0 {
			fmt.Fprintf(os.Stderr, "benchcheck: no `ops/sec` lines found in %s\n", *normalize)
			os.Exit(2)
		}
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(2)
		}
		out = append(out, '\n')
		if *normalizeOut == "" {
			os.Stdout.Write(out)
		} else if err := os.WriteFile(*normalizeOut, out, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(2)
		} else {
			fmt.Printf("benchcheck: normalized %s -> %s (%d structures)\n",
				*normalize, *normalizeOut, len(rep.Structures))
		}
		if *serverBaseline == "" && *nativeBase == "" && *nativeReport == "" && *ratioMin == 0 {
			return
		}
	}

	if *ratioMin > 0 {
		var base, fresh serverReport
		if err := readJSON(*ratioBase, &base); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: ratio gate: %v\n", err)
			os.Exit(2)
		}
		if err := readJSON(*ratioFresh, &fresh); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: ratio gate: %v\n", err)
			os.Exit(2)
		}
		need := base.Throughput * *ratioMin
		status := "ok"
		if fresh.Throughput < need {
			fail("%s throughput %.0f ops/s is %.2fx of %s (%.0f); gate requires %.1fx",
				*ratioFresh, fresh.Throughput, fresh.Throughput/base.Throughput,
				*ratioBase, base.Throughput, *ratioMin)
			status = "FAIL"
		}
		fmt.Printf("ratio   %-34s base %12.0f fresh %12.0f  %.2fx (need %.1fx)  %s\n",
			"throughput_ops_per_s", base.Throughput, fresh.Throughput,
			fresh.Throughput/base.Throughput, *ratioMin, status)
		if fresh.Errors > 0 {
			fail("ratio-gated run %s reported %d errors", *ratioFresh, fresh.Errors)
		}
	}

	if *serverBaseline != "" && *serverFresh != "" {
		var base, fresh serverReport
		if err := readJSON(*serverBaseline, &base); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(2)
		}
		if err := readJSON(*serverFresh, &fresh); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(2)
		}
		floor := base.Throughput * (1 - *tolerance)
		status := "ok"
		if fresh.Throughput < floor {
			fail("server throughput %.0f ops/s is below %.0f (baseline %.0f, tolerance %.0f%%)",
				fresh.Throughput, floor, base.Throughput, *tolerance*100)
			status = "FAIL"
		}
		fmt.Printf("server  %-34s baseline %12.0f fresh %12.0f  %s\n",
			"throughput_ops_per_s", base.Throughput, fresh.Throughput, status)
		if fresh.Errors > 0 {
			fail("fresh server run reported %d errors", fresh.Errors)
		}
	}

	if *nativeBase != "" {
		var base nativeBaseline
		if err := readJSON(*nativeBase, &base); err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(2)
		}
		names := make([]string, 0, len(base.Benchmarks))
		re := ""
		for name := range base.Benchmarks {
			names = append(names, name)
		}
		sort.Strings(names)
		for i, name := range names {
			// Benchmark names in the baseline may carry sub-bench paths
			// (BenchmarkSkipQueue/MetricsOff); the -bench regex matches on
			// the top-level function name.
			top := name
			for j := 0; j < len(name); j++ {
				if name[j] == '/' {
					top = name[:j]
					break
				}
			}
			if i > 0 {
				re += "|"
			}
			re += "^" + top + "$"
		}
		cmd := exec.Command("go", "test", "-run", "^$", "-bench", re,
			"-benchtime", *benchTime, "-count", strconv.Itoa(*count), ".")
		out, err := cmd.CombinedOutput()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: native rerun failed: %v\n%s", err, out)
			os.Exit(2)
		}
		samples := map[string][]float64{}
		for _, m := range benchLine.FindAllStringSubmatch(string(out), -1) {
			ns, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				continue
			}
			samples[m[1]] = append(samples[m[1]], ns)
		}
		for _, name := range names {
			got, ok := samples["Benchmark"+trimBenchmark(name)]
			if !ok {
				got = samples[name]
			}
			if len(got) == 0 {
				fail("benchmark %q recorded in the baseline did not run (regex %q)", name, re)
				continue
			}
			fresh := median(got)
			baseMed := base.Benchmarks[name].MedianNsPerOp
			ceil := baseMed * (1 + *tolerance)
			status := "ok"
			if fresh > ceil {
				fail("%s: %.1f ns/op is above %.1f (baseline %.1f, tolerance %.0f%%)",
					name, fresh, ceil, baseMed, *tolerance*100)
				status = "FAIL"
			}
			fmt.Printf("native  %-34s baseline %9.1f ns fresh %9.1f ns  %s\n", name, baseMed, fresh, status)
		}
	}

	if *nativeReport != "" {
		data, err := os.ReadFile(*nativeReport)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcheck: %v\n", err)
			os.Exit(2)
		}
		rates := reportRates(data)
		for _, req := range strings.Split(*require, ",") {
			req = strings.TrimSpace(req)
			parts := strings.SplitN(req, ">=", 2)
			if len(parts) != 2 {
				fmt.Fprintf(os.Stderr, "benchcheck: bad -require term %q (want Challenger>=Champion)\n", req)
				os.Exit(2)
			}
			challenger, champion := strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1])
			cOps, cOK := rates[challenger]
			bOps, bOK := rates[champion]
			if !cOK || !bOK {
				fail("%s: structure missing from %s (have %v)", req, *nativeReport, rates)
				continue
			}
			floor := bOps * (1 - *tolerance)
			status := "ok"
			if cOps < floor {
				fail("%s: %s %.0f ops/s is below %.0f (%s %.0f, tolerance %.0f%%)",
					req, challenger, cOps, floor, champion, bOps, *tolerance*100)
				status = "FAIL"
			}
			fmt.Printf("report  %-34s %s %12.0f vs %s %12.0f  %s\n",
				req, challenger, cOps, champion, bOps, status)
		}
	}

	if *serverBaseline == "" && *nativeBase == "" && *nativeReport == "" && *ratioMin == 0 {
		fmt.Fprintln(os.Stderr, "benchcheck: nothing to compare (see -server-baseline/-server-fresh, -native-baseline, -native-report and -ratio-min)")
		os.Exit(2)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "benchcheck: FAILED — throughput regressed beyond tolerance")
		os.Exit(1)
	}
	fmt.Println("benchcheck: ok")
}

// trimBenchmark strips the "Benchmark" prefix if present so baseline keys
// written either way resolve against parsed output keys.
func trimBenchmark(name string) string {
	const p = "Benchmark"
	if len(name) >= len(p) && name[:len(p)] == p {
		return name[len(p):]
	}
	return name
}
