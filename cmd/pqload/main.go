// Command pqload is the load generator for pqd: it drives a mixed
// Insert/DeleteMin workload over internal/client and reports throughput
// and latency quantiles, optionally as a JSON benchmark artifact
// (BENCH_server.json). Together with pqd it is the repository's standing
// macro-benchmark: a client-driven open-system workload, as opposed to the
// closed-loop microbenchmarks of cmd/skipbench.
//
// Two modes:
//
//   - closed loop (default): -workers goroutines each issue the next
//     operation as soon as the previous one completes. Measures the
//     server's saturated throughput.
//   - open loop (-rate N): operations are dispatched on a fixed schedule
//     of N ops/sec regardless of completions, and latency is measured
//     from the scheduled dispatch time, so queueing delay shows up in the
//     quantiles instead of being silently omitted (Gruber's
//     coordinated-omission point).
//
// With -lease (closed loop only, against a pqd started with -lease) the
// consume side speaks the at-least-once protocol instead of DeleteMin:
// each pop is a PopLease round trip followed by an Ack round trip, both
// counted and timed as separate operations. -lease-abandon simulates
// consumer crashes: that fraction of granted leases is never acked, so
// the server's expiry sweep redelivers them mid-run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"skipqueue/internal/client"
	"skipqueue/internal/flight"
	"skipqueue/internal/hist"
)

// latSummary is the JSON shape of one operation's latency distribution.
type latSummary struct {
	N      uint64  `json:"n"`
	MeanNs int64   `json:"mean_ns"`
	P50Ns  int64   `json:"p50_ns"`
	P90Ns  int64   `json:"p90_ns"`
	P99Ns  int64   `json:"p99_ns"`
	MaxNs  int64   `json:"max_ns"`
	MeanMs float64 `json:"mean_ms"`
	P99Ms  float64 `json:"p99_ms"`
}

func summarize(h *hist.H) latSummary {
	return latSummary{
		N:      h.Count(),
		MeanNs: int64(h.Mean()),
		P50Ns:  int64(h.Quantile(0.50)),
		P90Ns:  int64(h.Quantile(0.90)),
		P99Ns:  int64(h.Quantile(0.99)),
		MaxNs:  int64(h.Max()),
		MeanMs: float64(h.Mean()) / 1e6,
		P99Ms:  float64(h.Quantile(0.99)) / 1e6,
	}
}

// report is the BENCH_server.json document.
type report struct {
	Bench     string     `json:"bench"`
	Mode      string     `json:"mode"`
	Addr      string     `json:"addr"`
	Conns     int        `json:"conns"`
	Workers   int        `json:"workers"`
	BatchMax  int        `json:"batch_max,omitempty"`
	LingerNs  int64      `json:"batch_linger_ns,omitempty"`
	RateOps   int        `json:"rate_ops_per_s,omitempty"`
	Mix       float64    `json:"insert_mix"`
	ValueSize int        `json:"value_bytes"`
	Duration  float64    `json:"duration_s"`
	Ops       uint64     `json:"ops"`
	Errors    uint64     `json:"errors"`
	Thru      float64    `json:"throughput_ops_per_s"`
	Insert    latSummary `json:"insert"`
	DeleteMin latSummary `json:"deletemin"`
	FinalLen  int        `json:"final_len"`

	// Lease-mode extras (with -lease).
	Lease     bool        `json:"lease,omitempty"`
	Abandon   float64     `json:"lease_abandon,omitempty"`
	Abandoned uint64      `json:"leases_abandoned,omitempty"`
	PopLease  *latSummary `json:"poplease,omitempty"`
	Ack       *latSummary `json:"ack,omitempty"`
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:9400", "pqd address")
		conns    = flag.Int("conns", 8, "pooled connections")
		workers  = flag.Int("workers", 16, "closed-loop worker goroutines")
		duration = flag.Duration("duration", 10*time.Second, "measurement window")
		rate     = flag.Int("rate", 0, "open-loop target ops/sec (0 = closed loop)")
		mix      = flag.Float64("mix", 0.5, "fraction of operations that are Inserts")
		valueSz  = flag.Int("value", 16, "value payload bytes")
		prefill  = flag.Int("prefill", 1000, "elements inserted before measuring")
		keyspace = flag.Int64("keyspace", 1<<20, "priorities drawn uniformly from [0, keyspace)")
		seed     = flag.Int64("seed", 1, "workload RNG seed")
		batchMax = flag.Int("batch", 0, "client-side op coalescing: pack up to this many pending ops per OpBatch frame (0 = off)")
		linger   = flag.Duration("batch-linger", 0, "with -batch, how long the writer waits for more pending ops before flushing a short batch")
		lease    = flag.Bool("lease", false, "consume via PopLease/Ack (at-least-once) instead of DeleteMin; needs a lease-enabled pqd, closed loop only")
		leaseTTL = flag.Duration("lease-ttl", 0, "per-lease TTL sent with PopLease (0 = server default)")
		abandon  = flag.Float64("lease-abandon", 0, "fraction of granted leases never acked — simulated consumer crashes the server must redeliver")
		out      = flag.String("out", "", "write the JSON report to this file (e.g. BENCH_server.json)")
		traceOut = flag.String("trace-out", "", "record end-to-end traces and write the client flight dump (JSON) to this file; pair with a pqd started with -flight and feed both to cmd/pqtrace")
		traceEvs = flag.Int("trace-events", 1<<16, "client flight-recorder ring slots per shard (with -trace-out)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the load generator itself to this file")
	)
	flag.Parse()

	if *lease && *rate > 0 {
		fmt.Fprintln(os.Stderr, "pqload: -lease is closed-loop only (no async lease API); drop -rate")
		os.Exit(1)
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pqload: %v\n", err)
			os.Exit(1)
		}
		pprof.StartCPUProfile(f)
		defer pprof.StopCPUProfile()
	}

	var tracer *flight.Recorder
	if *traceOut != "" {
		tracer = flight.New("client", 0, *traceEvs)
	}
	cl, err := client.Dial(client.Config{
		Addr:        *addr,
		Conns:       *conns,
		Flight:      tracer,
		BatchMax:    *batchMax,
		BatchLinger: *linger,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pqload: %v\n", err)
		os.Exit(1)
	}
	defer cl.Close()

	value := make([]byte, *valueSz)
	for i := range value {
		value[i] = byte('a' + i%26)
	}
	rng := rand.New(rand.NewSource(*seed))
	for i := 0; i < *prefill; i++ {
		if err := cl.Insert(rng.Int63n(*keyspace), value); err != nil {
			fmt.Fprintf(os.Stderr, "pqload: prefill: %v\n", err)
			os.Exit(1)
		}
	}

	var (
		insertH, deleteH hist.H
		popH, ackH       hist.H
		ops, errs, aband atomic.Uint64
	)
	mode := "closed"
	start := time.Now()
	switch {
	case *rate > 0:
		mode = "open"
		runOpen(cl, *rate, *duration, *mix, *keyspace, *seed, value, &insertH, &deleteH, &ops, &errs)
	case *lease:
		mode = "lease"
		runLeaseClosed(cl, *workers, *duration, *mix, *keyspace, *seed, value,
			*leaseTTL, *abandon, &insertH, &popH, &ackH, &ops, &errs, &aband)
	default:
		runClosed(cl, *workers, *duration, *mix, *keyspace, *seed, value, &insertH, &deleteH, &ops, &errs)
	}
	elapsed := time.Since(start)

	finalLen, err := cl.Len()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pqload: final Len: %v\n", err)
	}

	r := report{
		Bench:     "pqd loopback macro-benchmark (cmd/pqload)",
		Mode:      mode,
		Addr:      *addr,
		Conns:     *conns,
		Workers:   *workers,
		BatchMax:  *batchMax,
		LingerNs:  int64(*linger),
		RateOps:   *rate,
		Mix:       *mix,
		ValueSize: *valueSz,
		Duration:  elapsed.Seconds(),
		Ops:       ops.Load(),
		Errors:    errs.Load(),
		Thru:      float64(ops.Load()) / elapsed.Seconds(),
		Insert:    summarize(&insertH),
		DeleteMin: summarize(&deleteH),
		FinalLen:  finalLen,
	}
	if *lease {
		r.Lease = true
		r.Abandon = *abandon
		r.Abandoned = aband.Load()
		pl, ak := summarize(&popH), summarize(&ackH)
		r.PopLease, r.Ack = &pl, &ak
	}

	fmt.Printf("pqload: mode=%s ops=%d errors=%d elapsed=%v throughput=%.0f ops/s\n",
		r.Mode, r.Ops, r.Errors, elapsed.Round(time.Millisecond), r.Thru)
	fmt.Printf("  insert:    %s\n", insertH.Summary())
	if *lease {
		fmt.Printf("  poplease:  %s\n", popH.Summary())
		fmt.Printf("  ack:       %s (abandoned %d leases)\n", ackH.Summary(), aband.Load())
	} else {
		fmt.Printf("  deletemin: %s\n", deleteH.Summary())
	}

	if *out != "" {
		data, err := json.MarshalIndent(r, "", "  ")
		if err == nil {
			err = os.WriteFile(*out, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "pqload: writing %s: %v\n", *out, err)
			os.Exit(1)
		}
		fmt.Printf("pqload: wrote %s\n", *out)
	}

	if *traceOut != "" {
		d := tracer.Snapshot()
		data, err := json.MarshalIndent(d, "", "  ")
		if err == nil {
			err = os.WriteFile(*traceOut, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "pqload: writing %s: %v\n", *traceOut, err)
			os.Exit(1)
		}
		fmt.Printf("pqload: wrote %s (%d trace events, %d overwritten)\n",
			*traceOut, len(d.Events), d.Written-uint64(len(d.Events)))
	}
}

// runClosed saturates the server: each worker issues its next op as soon as
// the previous completes. The per-op bookkeeping is deliberately lean — a
// xorshift draw instead of math/rand and a deadline check every few ops —
// so at coalesced throughput the generator measures the server, not itself.
func runClosed(cl *client.Client, workers int, d time.Duration, mix float64,
	keyspace int64, seed int64, value []byte,
	insertH, deleteH *hist.H, ops, errs *atomic.Uint64) {
	deadline := time.Now().Add(d)
	mixCut := uint64(mix * (1 << 32))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rngState := uint64(seed+int64(w)*1e9)*0x9e3779b97f4a7c15 + 1
			nextRand := func() uint64 {
				rngState ^= rngState << 13
				rngState ^= rngState >> 7
				rngState ^= rngState << 17
				return rngState
			}
			for i := 0; ; i++ {
				if i%16 == 0 && !time.Now().Before(deadline) {
					return
				}
				t0 := time.Now()
				if nextRand()&0xffffffff < mixCut {
					if err := cl.Insert(int64(nextRand()%uint64(keyspace)), value); err != nil {
						errs.Add(1)
					} else {
						insertH.Observe(time.Since(t0))
					}
				} else {
					if _, _, _, err := cl.DeleteMin(); err != nil {
						errs.Add(1)
					} else {
						deleteH.Observe(time.Since(t0))
					}
				}
				ops.Add(1)
			}
		}(w)
	}
	wg.Wait()
}

// runLeaseClosed is runClosed with the consume side speaking the lease
// protocol: a granted lease is acked immediately (two timed round trips)
// unless the abandon draw elects it a simulated consumer crash, in which
// case nobody acks and the server's expiry sweep must redeliver it. Ack
// hitting ErrNoLease counts as an error: with the TTLs this generator
// is meant for, a live consumer should never lose a race with expiry.
func runLeaseClosed(cl *client.Client, workers int, d time.Duration, mix float64,
	keyspace int64, seed int64, value []byte, ttl time.Duration, abandon float64,
	insertH, popH, ackH *hist.H, ops, errs, aband *atomic.Uint64) {
	deadline := time.Now().Add(d)
	mixCut := uint64(mix * (1 << 32))
	abandonCut := uint64(abandon * (1 << 32))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rngState := uint64(seed+int64(w)*1e9)*0x9e3779b97f4a7c15 + 1
			nextRand := func() uint64 {
				rngState ^= rngState << 13
				rngState ^= rngState >> 7
				rngState ^= rngState << 17
				return rngState
			}
			for i := 0; ; i++ {
				if i%16 == 0 && !time.Now().Before(deadline) {
					return
				}
				t0 := time.Now()
				if nextRand()&0xffffffff < mixCut {
					if err := cl.Insert(int64(nextRand()%uint64(keyspace)), value); err != nil {
						errs.Add(1)
					} else {
						insertH.Observe(time.Since(t0))
					}
					ops.Add(1)
					continue
				}
				l, found, err := cl.PopLease(ttl)
				if err != nil {
					errs.Add(1)
				} else {
					popH.Observe(time.Since(t0))
				}
				ops.Add(1)
				if err != nil || !found {
					continue
				}
				if nextRand()&0xffffffff < abandonCut {
					aband.Add(1) // simulated crash: the lease dies unacked
					continue
				}
				t1 := time.Now()
				if err := l.Ack(); err != nil {
					errs.Add(1)
				} else {
					ackH.Observe(time.Since(t1))
				}
				ops.Add(1)
			}
		}(w)
	}
	wg.Wait()
}

// runOpen dispatches ops on a fixed schedule and measures latency from the
// scheduled time, so a slow server accumulates visible queueing delay.
func runOpen(cl *client.Client, rate int, d time.Duration, mix float64,
	keyspace int64, seed int64, value []byte,
	insertH, deleteH *hist.H, ops, errs *atomic.Uint64) {
	interval := time.Second / time.Duration(rate)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	deadline := time.Now().Add(d)
	rng := rand.New(rand.NewSource(seed))
	var wg sync.WaitGroup
	next := time.Now()
	for time.Now().Before(deadline) {
		if wait := time.Until(next); wait > 0 {
			time.Sleep(wait)
		}
		scheduled := next
		next = next.Add(interval)
		isInsert := rng.Float64() < mix
		prio := rng.Int63n(keyspace)
		wg.Add(1)
		go func() {
			defer wg.Done()
			var (
				p   *client.Pending
				err error
			)
			if isInsert {
				p, err = cl.InsertAsync(prio, value)
			} else {
				p, err = cl.DeleteMinAsync()
			}
			if err == nil {
				_, err = p.Wait()
			}
			lat := time.Since(scheduled)
			if err != nil {
				errs.Add(1)
			} else if isInsert {
				insertH.Observe(lat)
			} else {
				deleteH.Observe(lat)
			}
			ops.Add(1)
		}()
	}
	wg.Wait()
}
