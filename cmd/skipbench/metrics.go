package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"skipqueue"
	"skipqueue/internal/obs"
	"skipqueue/internal/xrand"
)

// runMetrics drives the four native queue families through a short mixed
// workload with the observability probes on and prints each family's
// snapshot: per-operation latency histograms plus the contention counters
// specific to its synchronization design (lock retries for the skiplist, CAS
// retries and helping for the lock-free queue, bit-reversal lock chases for
// the Hunt heap, combining depth for the funnel). Unlike the simulated
// experiments above, this measures the real Go implementations on the host.
func runMetrics(w *os.File, workers int, d time.Duration, seed uint64, outPath string) {
	fmt.Fprintf(w, "# Observability: native queues under a mixed workload (workers=%d duration=%v)\n\n",
		workers, d)

	type target struct {
		name   string
		inst   skipqueue.Instrumented
		insert func(int64)
		del    func()
	}
	sq := skipqueue.New[int64, int64](skipqueue.WithSeed(seed), skipqueue.WithMetrics())
	lf := skipqueue.NewLockFree[int64, int64](skipqueue.WithSeed(seed), skipqueue.WithMetrics())
	hp := skipqueue.NewHeap[int64, int64](1<<22, skipqueue.WithMetrics())
	fl := skipqueue.NewFunnelList[int64, int64](skipqueue.WithMetrics())
	sh := skipqueue.NewShardedPQ[int64](0, skipqueue.WithSeed(seed), skipqueue.WithMetrics())
	el := skipqueue.NewElimPQ[int64](0, skipqueue.WithSeed(seed), skipqueue.WithMetrics())
	sp := skipqueue.NewSprayPQ[int64](0, skipqueue.WithSeed(seed), skipqueue.WithMetrics())
	targets := []target{
		{"SkipQueue", sq, func(k int64) { sq.Insert(k, k) }, func() { sq.DeleteMin() }},
		{"LockFree", lf, func(k int64) { lf.Insert(k, k) }, func() { lf.DeleteMin() }},
		{"Heap", hp, func(k int64) { _ = hp.Insert(k, k) }, func() { hp.DeleteMin() }},
		{"FunnelList", fl, func(k int64) { fl.Insert(k, k) }, func() { fl.DeleteMin() }},
		{"Sharded", sh, func(k int64) { sh.Push(k, k) }, func() { sh.Pop() }},
		{"Elim", el, func(k int64) { el.Push(k, k) }, func() { el.Pop() }},
		{"Spray", sp, func(k int64) { sp.Push(k, k) }, func() { sp.Pop() }},
	}

	snapshots := map[string]skipqueue.Snapshot{}
	for _, t := range targets {
		rng := xrand.NewRand(seed)
		for i := 0; i < 1000; i++ {
			t.insert(rng.Int63() % (1 << 40))
		}
		deadline := time.Now().Add(d)
		var wg sync.WaitGroup
		for wk := 0; wk < workers; wk++ {
			wg.Add(1)
			go func(wk int) {
				defer wg.Done()
				r := xrand.NewRand(seed + uint64(wk)*0x9e3779b97f4a7c15)
				obs.Do(t.name, func() {
					for time.Now().Before(deadline) {
						if r.Float64() < 0.5 {
							t.insert(r.Int63() % (1 << 40))
						} else {
							t.del()
						}
					}
				})
			}(wk)
		}
		wg.Wait()
		s := t.inst.Snapshot()
		snapshots[t.name] = s
		fmt.Fprintln(w, s.Table())
	}

	if outPath != "" {
		data, err := json.MarshalIndent(snapshots, "", "  ")
		if err == nil {
			err = os.WriteFile(outPath, data, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "skipbench: writing %s: %v\n", outPath, err)
			os.Exit(1)
		}
		fmt.Fprintf(w, "wrote %d snapshots to %s\n", len(snapshots), outPath)
	}
}
