// Command skipbench regenerates the tables and figures of the Lotan/Shavit
// evaluation (Section 5) on the simulated multiprocessor.
//
// Usage:
//
//	skipbench -experiment fig3            # one figure at paper scale
//	skipbench -experiment all -scale 0.2  # everything, 5x fewer operations
//	skipbench -list                       # show available experiments
//	skipbench -experiment fig4 -csv       # machine-readable rows
//
// Latencies are printed in simulated machine cycles; rows correspond to the
// series of the paper's plots (one row per processor count per structure, or
// per work amount for Figure 2). See EXPERIMENTS.md for paper-vs-measured
// commentary.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"skipqueue/internal/harness"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "experiment id (fig2..fig8, funnel-delmin, all)")
		scale      = flag.Float64("scale", 1.0, "operation-count multiplier (1.0 = paper scale)")
		maxProcs   = flag.Int("maxprocs", 256, "largest simulated processor count")
		seed       = flag.Uint64("seed", 1, "experiment seed")
		csv        = flag.Bool("csv", false, "emit CSV rows")
		plot       = flag.Bool("plot", false, "render ASCII charts after each processor sweep")
		summary    = flag.Bool("summary", true, "print headline ratios after each experiment")
		list       = flag.Bool("list", false, "list experiments and exit")
		metrics    = flag.Bool("metrics", false, "run the native queues with probes on and print their snapshots")
		metricsOut = flag.String("metrics-out", "", "write the -metrics snapshots to this file as JSON (implies -metrics)")
		metricsDur = flag.Duration("metrics-duration", 500*time.Millisecond, "measurement window per structure for -metrics")
		workers    = flag.Int("workers", 8, "worker goroutines for -metrics")
	)
	flag.Parse()

	if *metricsOut != "" {
		*metrics = true
	}
	if *metrics {
		runMetrics(os.Stdout, *workers, *metricsDur, *seed, *metricsOut)
		return
	}

	if *list {
		for _, e := range harness.Experiments {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		fmt.Printf("%-14s %s\n", "funnel-delmin",
			"Ablation: SkipQueue with a funnel-regulated DeleteMin (the design the authors tried and rejected)")
		fmt.Printf("%-14s %s\n", "contention",
			"Analysis: where the cycles go (hot-word stalls vs lock waits) per structure")
		fmt.Printf("%-14s %s\n", "lockfree",
			"Extension: lock-based SkipQueue vs its lock-free (CAS) successor")
		fmt.Printf("%-14s %s\n", "gc",
			"Ablation: cost of the paper's dedicated-GC-processor reclamation scheme")
		fmt.Printf("%-14s %s\n", "keydist",
			"Ablation: priority distributions beyond the paper's uniform draws")
		fmt.Printf("%-14s %s\n", "globallock",
			"Baseline: naive single-global-lock heap vs Hunt heap vs SkipQueue")
		fmt.Printf("%-14s %s\n", "bounded",
			"Related work [39]: bounded-range bin queue vs SkipQueue on small priorities")
		return
	}

	opts := harness.Options{Scale: *scale, MaxProcs: *maxProcs, Seed: *seed, CSV: *csv}

	run := func(e harness.Experiment) {
		start := time.Now()
		results := harness.RunExperiment(os.Stdout, e, opts)
		if *plot && len(e.Works) == 0 {
			harness.PlotResults(os.Stdout, e.Title, results)
		}
		if *summary && !*csv {
			if s := harness.Summarize(results); s != "" {
				fmt.Print(s)
			}
			if x := harness.Crossover(results, harness.FunnelList, harness.SkipQueue); x > 0 {
				fmt.Printf("FunnelList falls behind SkipQueue at %d processors\n", x)
			}
			fmt.Printf("(%s)\n", time.Since(start).Round(time.Millisecond))
		}
		fmt.Println()
	}

	switch *experiment {
	case "all":
		for _, e := range harness.Experiments {
			run(e)
		}
		runFunnelDelMin(os.Stdout, opts)
		runLockFree(os.Stdout, opts)
		runGC(os.Stdout, opts)
		runKeyDist(os.Stdout, opts)
		runGlobalLock(os.Stdout, opts)
		runBounded(os.Stdout, opts)
		runContention(os.Stdout, opts)
	case "funnel-delmin":
		runFunnelDelMin(os.Stdout, opts)
	case "contention":
		runContention(os.Stdout, opts)
	case "lockfree":
		runLockFree(os.Stdout, opts)
	case "gc":
		runGC(os.Stdout, opts)
	case "keydist":
		runKeyDist(os.Stdout, opts)
	case "globallock":
		runGlobalLock(os.Stdout, opts)
	case "bounded":
		runBounded(os.Stdout, opts)
	default:
		e, ok := harness.FindExperiment(*experiment)
		if !ok {
			fmt.Fprintf(os.Stderr, "skipbench: unknown experiment %q (try -list)\n", *experiment)
			os.Exit(2)
		}
		run(e)
	}
}

// runFunnelDelMin reproduces the negative result reported in Section 5: the
// authors first tried regulating DeleteMin access to the SkipQueue's bottom
// level with a combining funnel and found it slower above 64 processors than
// letting processors race for the first unmarked node.
func runFunnelDelMin(w *os.File, opts harness.Options) {
	fmt.Fprintln(w, "# Ablation: funnel-regulated DeleteMin vs racing DeleteMin (50 initial, 50% inserts)")
	harness.RunFunnelDelMin(w, opts)
	fmt.Fprintln(w)
}

// runLockFree compares the paper's lock-based queue with the lock-free
// design its line of work evolved into.
func runLockFree(w *os.File, opts harness.Options) {
	fmt.Fprintln(w, "# Extension: lock-based vs lock-free SkipQueue (50 initial, 50% inserts)")
	harness.RunLockFree(w, opts)
	fmt.Fprintln(w)
}

// runGC measures the paper's reclamation scheme (a dedicated collector
// processor, per-processor garbage lists, entry-time registrations).
func runGC(w *os.File, opts harness.Options) {
	fmt.Fprintln(w, "# Ablation: explicit reclamation with a dedicated GC processor (50 initial, 50% inserts)")
	harness.RunGC(w, opts)
	fmt.Fprintln(w)
}

// runKeyDist compares structures across priority distributions.
func runKeyDist(w *os.File, opts harness.Options) {
	fmt.Fprintln(w, "# Ablation: priority distributions (64 procs, 1000 initial, 50% inserts)")
	harness.RunKeyDist(w, opts)
	fmt.Fprintln(w)
}

// runGlobalLock sweeps the naive baseline.
func runGlobalLock(w *os.File, opts harness.Options) {
	fmt.Fprintln(w, "# Baseline: single-global-lock heap (1000 initial, 50% inserts)")
	harness.RunGlobalLock(w, opts)
	fmt.Fprintln(w)
}

// runBounded compares the bounded bin queue against the general SkipQueue.
func runBounded(w *os.File, opts harness.Options) {
	fmt.Fprintln(w, "# Related work [39]: bounded-range bins vs SkipQueue (256 priorities, 1000 initial)")
	harness.RunBounded(w, opts)
	fmt.Fprintln(w)
}

// runContention prints the hot-spot analysis: per structure and processor
// count, how many cycles per operation drain into hot-word queueing versus
// lock waiting.
func runContention(w *os.File, opts harness.Options) {
	fmt.Fprintln(w, "# Analysis: contention breakdown (50 initial, 50% inserts)")
	harness.RunContention(w, opts)
	fmt.Fprintln(w)
}
