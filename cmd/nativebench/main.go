// Command nativebench measures the native (real-goroutine) queues with full
// latency distributions — testing.B reports only means, and contention
// effects live in the tail. It runs the paper's mixed workload on every
// structure and prints mean, p50/p90/p99/p99.9 and max latencies for Insert
// and DeleteMin separately.
//
//	nativebench -workers 8 -duration 2s -initial 1000
//	nativebench -structures SkipQueue,LockFree -ratio 0.3
//
// On machines with few cores the differences are small (the paper needed
// 256 processors; see cmd/skipbench for the simulated sweep) but tail
// latency still separates the designs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"skipqueue"
	"skipqueue/internal/hist"
	"skipqueue/internal/obs"
	"skipqueue/internal/xrand"
)

type queue interface {
	insert(k int64)
	deleteMin() bool
}

type skipQ struct {
	q *skipqueue.Queue[int64, int64]
}

func (s skipQ) insert(k int64)  { s.q.Insert(k, k) }
func (s skipQ) deleteMin() bool { _, _, ok := s.q.DeleteMin(); return ok }

type relaxedQ struct {
	q *skipqueue.Queue[int64, int64]
}

func (s relaxedQ) insert(k int64)  { s.q.Insert(k, k) }
func (s relaxedQ) deleteMin() bool { _, _, ok := s.q.DeleteMin(); return ok }

type lockFreeQ struct {
	q *skipqueue.LockFree[int64, int64]
}

func (s lockFreeQ) insert(k int64)  { s.q.Insert(k, k) }
func (s lockFreeQ) deleteMin() bool { _, _, ok := s.q.DeleteMin(); return ok }

type heapQ struct{ q *skipqueue.Heap[int64, int64] }

func (s heapQ) insert(k int64)  { _ = s.q.Insert(k, k) }
func (s heapQ) deleteMin() bool { _, _, ok := s.q.DeleteMin(); return ok }

type glQ struct {
	q *skipqueue.GlobalLockHeap[int64, int64]
}

func (s glQ) insert(k int64)  { s.q.Insert(k, k) }
func (s glQ) deleteMin() bool { _, _, ok := s.q.DeleteMin(); return ok }

type funnelQ struct {
	q *skipqueue.FunnelList[int64, int64]
}

func (s funnelQ) insert(k int64)  { s.q.Insert(k, k) }
func (s funnelQ) deleteMin() bool { _, _, ok := s.q.DeleteMin(); return ok }

type strictPQ struct {
	q *skipqueue.PQ[int64]
}

func (s strictPQ) insert(k int64)  { s.q.Push(k, k) }
func (s strictPQ) deleteMin() bool { _, _, ok := s.q.Pop(); return ok }

type shardedQ struct {
	q *skipqueue.ShardedPQ[int64]
}

func (s shardedQ) insert(k int64)  { s.q.Push(k, k) }
func (s shardedQ) deleteMin() bool { _, _, ok := s.q.Pop(); return ok }

type elimQ struct {
	q *skipqueue.ElimPQ[int64]
}

func (s elimQ) insert(k int64)  { s.q.Push(k, k) }
func (s elimQ) deleteMin() bool { _, _, ok := s.q.Pop(); return ok }

type sprayQ struct {
	q *skipqueue.SprayPQ[int64]
}

func (s sprayQ) insert(k int64)  { s.q.Push(k, k) }
func (s sprayQ) deleteMin() bool { _, _, ok := s.q.Pop(); return ok }

// build constructs a structure by name. The second result exposes the
// structure's observability probes (zero-valued unless metrics is set).
func build(name string, capacity, shards, elimSlots, sprayK int, metrics bool) (queue, skipqueue.Instrumented, bool) {
	opts := []skipqueue.Option{skipqueue.WithSeed(1)}
	if metrics {
		opts = append(opts, skipqueue.WithMetrics())
	}
	switch name {
	case "SkipQueue":
		q := skipqueue.New[int64, int64](opts...)
		return skipQ{q}, q, true
	case "Relaxed":
		q := skipqueue.New[int64, int64](append(opts, skipqueue.WithRelaxed())...)
		return relaxedQ{q}, q, true
	case "LockFree":
		q := skipqueue.NewLockFree[int64, int64](opts...)
		return lockFreeQ{q}, q, true
	case "Heap":
		q := skipqueue.NewHeap[int64, int64](capacity, opts...)
		return heapQ{q}, q, true
	case "FunnelList":
		q := skipqueue.NewFunnelList[int64, int64](opts...)
		return funnelQ{q}, q, true
	case "GlobalLock":
		q := skipqueue.NewGlobalLockHeap[int64, int64](opts...)
		return glQ{q}, q, true
	case "StrictPQ":
		q := skipqueue.NewPQ[int64](opts...)
		return strictPQ{q}, q, true
	case "Sharded":
		q := skipqueue.NewShardedPQ[int64](shards, opts...)
		return shardedQ{q}, q, true
	case "Elim":
		q := skipqueue.NewElimPQ[int64](elimSlots, opts...)
		return elimQ{q}, q, true
	case "ElimSharded":
		q := skipqueue.NewElimShardedPQ[int64](elimSlots, shards, opts...)
		return elimQ{q}, q, true
	case "Spray":
		q := skipqueue.NewSprayPQ[int64](sprayK, opts...)
		return sprayQ{q}, q, true
	}
	return nil, nil, false
}

func main() {
	var (
		workers    = flag.Int("workers", 8, "worker goroutines")
		duration   = flag.Duration("duration", 2*time.Second, "measurement duration per structure")
		initial    = flag.Int("initial", 1000, "initial queue size")
		ratio      = flag.Float64("ratio", 0.5, "insert ratio")
		structures = flag.String("structures", "SkipQueue,Relaxed,LockFree,Heap,FunnelList,GlobalLock,Sharded,Elim", "comma-separated structures")
		seed       = flag.Uint64("seed", 1, "workload seed")
		shards     = flag.Int("shards", 0, "shard count for the Sharded structures (0 = two per GOMAXPROCS)")
		elimSlots  = flag.Int("elim-slots", 0, "exchanger slots for the Elim structures (0 = one per core)")
		sprayK     = flag.Int("spray-k", 0, "contention width the Spray structure shapes its walk for (0 = GOMAXPROCS)")
		keyspan    = flag.Int64("keyspan", 1<<40, "keys are drawn uniformly from [0, keyspan); 1 pins every op to one hot key")
		metrics    = flag.Bool("metrics", false, "enable the queues' internal probes and print a snapshot per structure")
		metricsOut = flag.String("metrics-out", "", "write all snapshots to this file as JSON (implies -metrics)")
	)
	flag.Parse()
	if *metricsOut != "" {
		*metrics = true
	}

	names := strings.Split(*structures, ",")
	fmt.Printf("workers=%d duration=%v initial=%d insert-ratio=%.2f metrics=%v\n\n",
		*workers, *duration, *initial, *ratio, *metrics)
	snapshots := map[string]skipqueue.Snapshot{}
	for _, name := range names {
		name = strings.TrimSpace(name)
		q, inst, ok := build(name, *initial+int(duration.Seconds()*5_000_000), *shards, *elimSlots, *sprayK, *metrics)
		if !ok {
			fmt.Fprintf(os.Stderr, "nativebench: unknown structure %q\n", name)
			os.Exit(2)
		}
		ins, del, ops := run(q, name, *workers, *duration, *initial, *ratio, *seed, *keyspan)
		fmt.Printf("%-11s %10.0f ops/sec\n", name, float64(ops)/duration.Seconds())
		fmt.Printf("  insert:    %s\n", ins.Summary())
		fmt.Printf("  deletemin: %s\n", del.Summary())
		if *metrics {
			s := inst.Snapshot()
			snapshots[name] = s
			fmt.Println(s.Table())
		}
	}
	if *metricsOut != "" {
		data, err := json.MarshalIndent(snapshots, "", "  ")
		if err == nil {
			err = os.WriteFile(*metricsOut, data, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "nativebench: writing %s: %v\n", *metricsOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d snapshots to %s\n", len(snapshots), *metricsOut)
	}
}

func run(q queue, name string, workers int, d time.Duration, initial int, ratio float64, seed uint64, keyspan int64) (ins, del *hist.H, ops uint64) {
	if keyspan <= 0 {
		keyspan = 1
	}
	rng := xrand.NewRand(seed)
	for i := 0; i < initial; i++ {
		q.insert(rng.Int63() % keyspan)
	}
	ins, del = new(hist.H), new(hist.H)
	var stop atomic.Bool
	var total atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := xrand.NewRand(seed + uint64(w)*0x9e3779b97f4a7c15)
			localIns, localDel := new(hist.H), new(hist.H)
			n := uint64(0)
			// Label the whole worker loop so CPU profiles attribute samples
			// to the structure under test (op=<name> in pprof output).
			obs.Do(name, func() {
				for !stop.Load() {
					start := time.Now()
					if r.Float64() < ratio {
						q.insert(r.Int63() % keyspan)
						localIns.Observe(time.Since(start))
					} else {
						q.deleteMin()
						localDel.Observe(time.Since(start))
					}
					n++
				}
			})
			ins.Merge(localIns)
			del.Merge(localDel)
			total.Add(n)
		}(w)
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	return ins, del, total.Load()
}
