// Command nativebench measures the native (real-goroutine) queues with full
// latency distributions — testing.B reports only means, and contention
// effects live in the tail. It runs the paper's mixed workload on every
// structure and prints mean, p50/p90/p99/p99.9 and max latencies for Insert
// and DeleteMin separately.
//
//	nativebench -workers 8 -duration 2s -initial 1000
//	nativebench -structures SkipQueue,LockFree -ratio 0.3
//
// On machines with few cores the differences are small (the paper needed
// 256 processors; see cmd/skipbench for the simulated sweep) but tail
// latency still separates the designs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"skipqueue"
	"skipqueue/internal/hist"
	"skipqueue/internal/xrand"
)

type queue interface {
	insert(k int64)
	deleteMin() bool
}

type skipQ struct {
	q *skipqueue.Queue[int64, int64]
}

func (s skipQ) insert(k int64)  { s.q.Insert(k, k) }
func (s skipQ) deleteMin() bool { _, _, ok := s.q.DeleteMin(); return ok }

type relaxedQ struct {
	q *skipqueue.Queue[int64, int64]
}

func (s relaxedQ) insert(k int64)  { s.q.Insert(k, k) }
func (s relaxedQ) deleteMin() bool { _, _, ok := s.q.DeleteMin(); return ok }

type lockFreeQ struct {
	q *skipqueue.LockFree[int64, int64]
}

func (s lockFreeQ) insert(k int64)  { s.q.Insert(k, k) }
func (s lockFreeQ) deleteMin() bool { _, _, ok := s.q.DeleteMin(); return ok }

type heapQ struct{ q *skipqueue.Heap[int64, int64] }

func (s heapQ) insert(k int64)  { _ = s.q.Insert(k, k) }
func (s heapQ) deleteMin() bool { _, _, ok := s.q.DeleteMin(); return ok }

type glQ struct {
	q *skipqueue.GlobalLockHeap[int64, int64]
}

func (s glQ) insert(k int64)  { s.q.Insert(k, k) }
func (s glQ) deleteMin() bool { _, _, ok := s.q.DeleteMin(); return ok }

type funnelQ struct {
	q *skipqueue.FunnelList[int64, int64]
}

func (s funnelQ) insert(k int64)  { s.q.Insert(k, k) }
func (s funnelQ) deleteMin() bool { _, _, ok := s.q.DeleteMin(); return ok }

func build(name string, capacity int) (queue, bool) {
	switch name {
	case "SkipQueue":
		return skipQ{skipqueue.New[int64, int64](skipqueue.WithSeed(1))}, true
	case "Relaxed":
		return relaxedQ{skipqueue.New[int64, int64](skipqueue.WithSeed(1), skipqueue.WithRelaxed())}, true
	case "LockFree":
		return lockFreeQ{skipqueue.NewLockFree[int64, int64](skipqueue.WithSeed(1))}, true
	case "Heap":
		return heapQ{skipqueue.NewHeap[int64, int64](capacity)}, true
	case "FunnelList":
		return funnelQ{skipqueue.NewFunnelList[int64, int64]()}, true
	case "GlobalLock":
		return glQ{skipqueue.NewGlobalLockHeap[int64, int64]()}, true
	}
	return nil, false
}

func main() {
	var (
		workers    = flag.Int("workers", 8, "worker goroutines")
		duration   = flag.Duration("duration", 2*time.Second, "measurement duration per structure")
		initial    = flag.Int("initial", 1000, "initial queue size")
		ratio      = flag.Float64("ratio", 0.5, "insert ratio")
		structures = flag.String("structures", "SkipQueue,Relaxed,LockFree,Heap,FunnelList,GlobalLock", "comma-separated structures")
		seed       = flag.Uint64("seed", 1, "workload seed")
	)
	flag.Parse()

	names := strings.Split(*structures, ",")
	fmt.Printf("workers=%d duration=%v initial=%d insert-ratio=%.2f\n\n",
		*workers, *duration, *initial, *ratio)
	for _, name := range names {
		name = strings.TrimSpace(name)
		q, ok := build(name, *initial+int(duration.Seconds()*5_000_000))
		if !ok {
			fmt.Fprintf(os.Stderr, "nativebench: unknown structure %q\n", name)
			os.Exit(2)
		}
		ins, del, ops := run(q, *workers, *duration, *initial, *ratio, *seed)
		fmt.Printf("%-11s %10.0f ops/sec\n", name, float64(ops)/duration.Seconds())
		fmt.Printf("  insert:    %s\n", ins.Summary())
		fmt.Printf("  deletemin: %s\n", del.Summary())
	}
}

func run(q queue, workers int, d time.Duration, initial int, ratio float64, seed uint64) (ins, del *hist.H, ops uint64) {
	rng := xrand.NewRand(seed)
	for i := 0; i < initial; i++ {
		q.insert(rng.Int63() % (1 << 40))
	}
	ins, del = new(hist.H), new(hist.H)
	var stop atomic.Bool
	var total atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := xrand.NewRand(seed + uint64(w)*0x9e3779b97f4a7c15)
			localIns, localDel := new(hist.H), new(hist.H)
			n := uint64(0)
			for !stop.Load() {
				start := time.Now()
				if r.Float64() < ratio {
					q.insert(r.Int63() % (1 << 40))
					localIns.Observe(time.Since(start))
				} else {
					q.deleteMin()
					localDel.Observe(time.Since(start))
				}
				n++
			}
			ins.Merge(localIns)
			del.Merge(localDel)
			total.Add(n)
		}(w)
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	return ins, del, total.Load()
}
