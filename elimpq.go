package skipqueue

import (
	"skipqueue/internal/core"
	"skipqueue/internal/elim"
)

// ElimPQ is the elimination front-end of internal/elim layered over a root
// multiset queue: an Insert whose priority is at or below the queue's
// current minimum and a concurrent Pop can meet in a small exchanger array
// and cancel directly, never touching the queue. On mixed workloads whose
// new priorities keep arriving at the front — discrete-event simulation
// near the simulation horizon, branch-and-bound with tight bounds — this
// removes the contended head from the hot path entirely; everything else
// falls through to the wrapped queue unchanged.
//
// Over the strict PQ (NewElimPQ) the combined structure still satisfies the
// paper's Definition 1: an eliminated pair serializes as Insert(k)
// immediately followed by DeleteMin -> k at the exchange, and the
// delete-side eligibility check (one PeekMin taken after the Pop began)
// guarantees no smaller must-see element is bypassed — see internal/elim's
// package comment for the full argument and internal/lincheck for the
// machine-checked witness. Over the relaxed ShardedPQ (NewElimShardedPQ)
// the multiset guarantees stay exact and eliminated deliveries stay inside
// the same rank-error bound as the bare sharded queue.
//
// *ElimPQ[[]byte] satisfies internal/server.Backend, so pqd can serve it
// (-backend elim, -backend elimsharded). All methods are safe for
// concurrent use.
type ElimPQ[V any] struct {
	e     *elim.PQ[V]
	inner Instrumented
}

// NewElimPQ returns an elimination front-end over a strict multiset PQ.
// slots is the exchanger array length (0 selects one slot per core, minimum
// 4); the options configure the inner queue, with WithMetrics also enabling
// the front-end's own "skipqueue.elim" probe set.
func NewElimPQ[V any](slots int, opts ...Option) *ElimPQ[V] {
	var cfg core.Config
	for _, o := range opts {
		o(&cfg)
	}
	inner := NewPQ[V](opts...)
	e := elim.New[V](inner, elim.Config{
		Slots:   slots,
		Clock:   inner.q.Now, // one clock across exchange and skiplist stamps
		Metrics: cfg.Metrics,
		Flight:  cfg.Flight,
	})
	return &ElimPQ[V]{e: e, inner: inner}
}

// NewElimShardedPQ returns an elimination front-end over a relaxed
// ShardedPQ with the given shard count (0 selects two shards per
// GOMAXPROCS). slots and opts are as in NewElimPQ.
func NewElimShardedPQ[V any](slots, shards int, opts ...Option) *ElimPQ[V] {
	var cfg core.Config
	for _, o := range opts {
		o(&cfg)
	}
	inner := NewShardedPQ[V](shards, opts...)
	e := elim.New[V](inner, elim.Config{
		Slots:   slots,
		Clock:   inner.q.Stamp,
		Metrics: cfg.Metrics,
		Flight:  cfg.Flight,
	})
	return &ElimPQ[V]{e: e, inner: inner}
}

// Push adds value with the given priority, through the exchanger when an
// eligible Pop arrives in time, through the inner queue otherwise.
func (pq *ElimPQ[V]) Push(priority int64, value V) { pq.e.Push(priority, value) }

// Pop removes and returns a minimal element: a waiting eliminable Push's if
// one is in the exchanger, the inner queue's minimum otherwise. ok is false
// only when the queue is empty and no offer is waiting.
func (pq *ElimPQ[V]) Pop() (priority int64, value V, ok bool) { return pq.e.Pop() }

// Peek returns the inner queue's minimum without removing it (advisory
// under concurrency; offers waiting in the exchanger belong to Pushes that
// have not returned and are not visible).
func (pq *ElimPQ[V]) Peek() (priority int64, value V, ok bool) { return pq.e.Peek() }

// Len returns the inner queue's length (exact when quiescent).
func (pq *ElimPQ[V]) Len() int { return pq.e.Len() }

// Slots returns the exchanger array length.
func (pq *ElimPQ[V]) Slots() int { return pq.e.Slots() }

// Snapshot merges the front-end's "skipqueue.elim" probes (exchange hits,
// misses, timeouts, fall-throughs, exchange-wait latency) with the inner
// queue's own snapshot. Zero-valued without WithMetrics.
func (pq *ElimPQ[V]) Snapshot() Snapshot {
	return pq.e.ObsSnapshot().Merge(pq.inner.Snapshot())
}

// Unwrap exposes the elimination layer for tests and harnesses that need
// its tracer hook or its direct probe set.
func (pq *ElimPQ[V]) Unwrap() *elim.PQ[V] { return pq.e }

var _ Instrumented = (*ElimPQ[int])(nil)
