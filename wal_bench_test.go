package skipqueue

import (
	"sync"
	"sync/atomic"
	"testing"

	"skipqueue/internal/wal"
)

// BenchmarkWALAppend measures the durable append path: one push record plus
// the Commit barrier, under both Commit contracts and at one and eight
// concurrent committers. Sync mode pays one group-commit fsync per batch —
// the eight-worker case is where the amortization shows, since all eight
// appends share each disk barrier. Async mode is the in-memory cost of the
// encode + batch handoff alone.
func BenchmarkWALAppend(b *testing.B) {
	value := make([]byte, 64)
	run := func(mode wal.Mode, workers int) func(*testing.B) {
		return func(b *testing.B) {
			l, err := wal.Open(wal.Config{Dir: b.TempDir(), Mode: mode}, nil)
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			var id atomic.Uint64
			b.SetBytes(int64(len(value)))
			b.ResetTimer()
			if workers == 1 {
				for i := 0; i < b.N; i++ {
					l.AppendPush(id.Add(1), int64(i), value)
					if err := l.Commit(); err != nil {
						b.Fatal(err)
					}
				}
			} else {
				var wg sync.WaitGroup
				per := b.N / workers
				for w := 0; w < workers; w++ {
					n := per
					if w == 0 {
						n += b.N % workers
					}
					wg.Add(1)
					go func(n int) {
						defer wg.Done()
						for i := 0; i < n; i++ {
							l.AppendPush(id.Add(1), int64(i), value)
							if err := l.Commit(); err != nil {
								b.Error(err)
								return
							}
						}
					}(n)
				}
				wg.Wait()
			}
			b.StopTimer()
		}
	}
	b.Run("sync-w1", run(wal.ModeSync, 1))
	b.Run("sync-w8", run(wal.ModeSync, 8))
	b.Run("async-w1", run(wal.ModeAsync, 1))
	b.Run("async-w8", run(wal.ModeAsync, 8))
}
