package skipqueue

import (
	"encoding/json"
	"math"
	"sync"
	"testing"
)

// TestPQKeyDecodeAllocFree: pqPriority must not copy the key into a fresh
// []byte — Pop calls it once per element.
func TestPQKeyDecodeAllocFree(t *testing.T) {
	key := pqKey(-42, 7)
	if n := testing.AllocsPerRun(100, func() {
		if pqPriority(key) != -42 {
			t.Fatal("bad decode")
		}
	}); n != 0 {
		t.Errorf("pqPriority allocates %v times per call, want 0", n)
	}
}

// TestPQKeyRoundTrip checks pqPriority inverts pqKey across the full int64
// range, including both sign-bit sides.
func TestPQKeyRoundTrip(t *testing.T) {
	priorities := []int64{
		math.MinInt64, math.MinInt64 + 1, -1 << 32, -42, -1, 0, 1, 42,
		1 << 32, math.MaxInt64 - 1, math.MaxInt64,
	}
	for _, p := range priorities {
		if got := pqPriority(pqKey(p, 12345)); got != p {
			t.Errorf("pqPriority(pqKey(%d)) = %d", p, got)
		}
	}
	// Ordering: keys must sort by (priority, seq).
	if !(pqKey(-1, 9) < pqKey(0, 0)) || !(pqKey(5, 1) < pqKey(5, 2)) {
		t.Error("composite keys do not sort by (priority, seq)")
	}
}

// TestSnapshotDisabledByDefault: without WithMetrics every family returns the
// zero Snapshot and pays only nil checks.
func TestSnapshotDisabledByDefault(t *testing.T) {
	for name, q := range map[string]Instrumented{
		"Queue":          New[int64, int](),
		"PQ":             NewPQ[int](),
		"LockFree":       NewLockFree[int64, int](),
		"Heap":           NewHeap[int64, int](1 << 10),
		"GlobalLockHeap": NewGlobalLockHeap[int64, int](),
		"FunnelList":     NewFunnelList[int64, int](),
		"Map":            NewMap[int64, int](),
	} {
		if s := q.Snapshot(); s.Enabled {
			t.Errorf("%s: metrics enabled without WithMetrics", name)
		}
	}
}

// TestSnapshotAllFamilies drives every family through the Instrumented
// interface with metrics on and checks that the operation histograms counted
// every call.
func TestSnapshotAllFamilies(t *testing.T) {
	const n = 300
	type family struct {
		q      Instrumented
		insert func(int64)
		del    func() bool
		insKey string
		delKey string
	}
	sq := New[int64, int](WithMetrics())
	pq := NewPQ[int](WithMetrics())
	lf := NewLockFree[int64, int](WithMetrics())
	hp := NewHeap[int64, int](1<<12, WithMetrics())
	gl := NewGlobalLockHeap[int64, int](WithMetrics())
	fl := NewFunnelList[int64, int](WithMetrics())
	families := map[string]family{
		"Queue": {sq, func(k int64) { sq.Insert(k, 0) },
			func() bool { _, _, ok := sq.DeleteMin(); return ok }, "insert", "deletemin"},
		"PQ": {pq, func(k int64) { pq.Push(k, 0) },
			func() bool { _, _, ok := pq.Pop(); return ok }, "insert", "deletemin"},
		"LockFree": {lf, func(k int64) { lf.Insert(k, 0) },
			func() bool { _, _, ok := lf.DeleteMin(); return ok }, "insert", "deletemin"},
		"Heap": {hp, func(k int64) { _ = hp.Insert(k, 0) },
			func() bool { _, _, ok := hp.DeleteMin(); return ok }, "insert", "deletemin"},
		"GlobalLockHeap": {gl, func(k int64) { gl.Insert(k, 0) },
			func() bool { _, _, ok := gl.DeleteMin(); return ok }, "insert", "deletemin"},
		"FunnelList": {fl, func(k int64) { fl.Insert(k, 0) },
			func() bool { _, _, ok := fl.DeleteMin(); return ok }, "insert", "deletemin"},
	}
	for name, f := range families {
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				base := int64(w+1) << 32
				for i := int64(0); i < n; i++ {
					f.insert(base + i)
				}
				for i := 0; i < n; i++ {
					f.del()
				}
			}(w)
		}
		wg.Wait()

		s := f.q.Snapshot()
		if !s.Enabled {
			t.Errorf("%s: snapshot not enabled", name)
			continue
		}
		ins, ok := s.Hist(f.insKey)
		if !ok || ins.Count != 4*n {
			t.Errorf("%s: insert hist count = %d (present=%v), want %d", name, ins.Count, ok, 4*n)
		}
		del, ok := s.Hist(f.delKey)
		if !ok || del.Count != 4*n {
			t.Errorf("%s: deletemin hist count = %d (present=%v), want %d", name, del.Count, ok, 4*n)
		}
		if _, err := json.Marshal(s); err != nil {
			t.Errorf("%s: snapshot does not marshal: %v", name, err)
		}
		if s.String() == "" {
			t.Errorf("%s: empty table rendering", name)
		}
	}
}

// TestMapSnapshot covers the Map family separately (different method names).
func TestMapSnapshot(t *testing.T) {
	m := NewMap[int64, int](MapMetrics())
	for i := int64(0); i < 100; i++ {
		m.Set(i, 0)
	}
	for i := int64(0); i < 100; i++ {
		m.Delete(i)
	}
	s := m.Snapshot()
	if !s.Enabled {
		t.Fatal("snapshot not enabled")
	}
	if h, ok := s.Hist("set"); !ok || h.Count != 100 {
		t.Errorf("set hist count = %d, want 100", h.Count)
	}
	if h, ok := s.Hist("delete"); !ok || h.Count != 100 {
		t.Errorf("delete hist count = %d, want 100", h.Count)
	}
}
