package skipqueue

import (
	"errors"

	"skipqueue/internal/cheap"
	"skipqueue/internal/core"
	"skipqueue/internal/funnel"
	"skipqueue/internal/glheap"
)

// This file exports the two baseline structures of the paper's evaluation so
// downstream users (and this repository's benchmarks) can compare against
// them without reaching into internal packages.

// ErrFull is returned by Heap.Insert when the fixed-capacity array is full —
// the pre-allocation requirement is one of the heap design's drawbacks the
// paper calls out.
var ErrFull = errors.New("skipqueue: heap is full")

// Heap is the concurrent heap of Hunt, Michael, Parthasarathy and Scott
// (IPL 1996): per-node locks, a short-duration global size lock, and
// bit-reversed insertion paths. It is the strongest heap-based competitor in
// the paper's evaluation. All methods are safe for concurrent use.
type Heap[K Ordered, V any] struct {
	h *cheap.Heap[K, V]
}

// NewHeap returns an empty concurrent heap holding at most capacity
// elements (rounded up to a full tree level; non-positive selects a default
// of about one million). Of the options only WithMetrics applies; the
// skiplist-shape options are ignored.
func NewHeap[K Ordered, V any](capacity int, opts ...Option) *Heap[K, V] {
	h := cheap.New[K, V](capacity)
	if baselineMetrics(opts) {
		h.EnableMetrics()
	}
	return &Heap[K, V]{h: h}
}

// baselineMetrics resolves the one option the baseline structures share.
func baselineMetrics(opts []Option) bool {
	var cfg core.Config
	for _, o := range opts {
		o(&cfg)
	}
	return cfg.Metrics
}

// Insert adds an element, or returns ErrFull.
func (h *Heap[K, V]) Insert(key K, value V) error {
	if !h.h.Insert(key, value) {
		return ErrFull
	}
	return nil
}

// DeleteMin removes and returns the minimum element.
func (h *Heap[K, V]) DeleteMin() (key K, value V, ok bool) { return h.h.DeleteMin() }

// Len returns the number of elements.
func (h *Heap[K, V]) Len() int { return h.h.Len() }

// Cap returns the fixed capacity.
func (h *Heap[K, V]) Cap() int { return h.h.Cap() }

// HeapStats re-exports the heap's contention counters.
type HeapStats = cheap.Stats

// Stats returns a snapshot of the heap's operation counters.
func (h *Heap[K, V]) Stats() HeapStats { return h.h.Stats() }

// Snapshot reads the observability probes (zero-valued without WithMetrics).
func (h *Heap[K, V]) Snapshot() Snapshot { return h.h.ObsSnapshot() }

// GlobalLockHeap is the naive baseline: a sequential binary heap behind one
// global mutex (multiset semantics). Every operation serializes; it exists
// so benchmarks can show the gap that motivates both the Hunt heap's
// fine-grained locking and the SkipQueue. All methods are safe for
// concurrent use.
type GlobalLockHeap[K Ordered, V any] struct {
	h *glheap.Heap[K, V]
}

// NewGlobalLockHeap returns an empty single-lock heap. Of the options only
// WithMetrics applies.
func NewGlobalLockHeap[K Ordered, V any](opts ...Option) *GlobalLockHeap[K, V] {
	h := glheap.New[K, V]()
	if baselineMetrics(opts) {
		h.EnableMetrics()
	}
	return &GlobalLockHeap[K, V]{h: h}
}

// Insert adds an element.
func (g *GlobalLockHeap[K, V]) Insert(key K, value V) { g.h.Insert(key, value) }

// DeleteMin removes and returns the minimum element.
func (g *GlobalLockHeap[K, V]) DeleteMin() (key K, value V, ok bool) { return g.h.DeleteMin() }

// PeekMin returns the minimum without removing it.
func (g *GlobalLockHeap[K, V]) PeekMin() (key K, value V, ok bool) { return g.h.PeekMin() }

// Len returns the number of elements.
func (g *GlobalLockHeap[K, V]) Len() int { return g.h.Len() }

// Snapshot reads the observability probes (zero-valued without WithMetrics).
func (g *GlobalLockHeap[K, V]) Snapshot() Snapshot { return g.h.ObsSnapshot() }

// FunnelList is a sorted linked-list priority queue whose single lock is
// shielded by a combining funnel (Shavit and Zemach). It is the fastest
// structure at low concurrency on small queues and degrades linearly with
// queue size — exactly the trade-off the paper's Figures 3 and 4 show.
// Unlike Queue it has multiset semantics. All methods are safe for
// concurrent use.
type FunnelList[K Ordered, V any] struct {
	l *funnel.List[K, V]
}

// NewFunnelList returns an empty FunnelList. Of the options only WithMetrics
// applies.
func NewFunnelList[K Ordered, V any](opts ...Option) *FunnelList[K, V] {
	return &FunnelList[K, V]{l: funnel.New[K, V](funnel.Config{
		Metrics: baselineMetrics(opts),
	})}
}

// Insert adds an element (duplicate keys coexist).
func (f *FunnelList[K, V]) Insert(key K, value V) { f.l.Insert(key, value) }

// DeleteMin removes and returns the minimum element.
func (f *FunnelList[K, V]) DeleteMin() (key K, value V, ok bool) { return f.l.DeleteMin() }

// Len returns the number of elements.
func (f *FunnelList[K, V]) Len() int { return f.l.Len() }

// FunnelStats re-exports the funnel's combining counters.
type FunnelStats = funnel.Stats

// Stats returns a snapshot of the funnel counters.
func (f *FunnelList[K, V]) Stats() FunnelStats { return f.l.Stats() }

// Snapshot reads the observability probes (zero-valued without WithMetrics).
func (f *FunnelList[K, V]) Snapshot() Snapshot { return f.l.ObsSnapshot() }

// Every queue family exposes its probes through the same interface.
var (
	_ Instrumented = (*Queue[int, int])(nil)
	_ Instrumented = (*PQ[int])(nil)
	_ Instrumented = (*LockFree[int, int])(nil)
	_ Instrumented = (*Heap[int, int])(nil)
	_ Instrumented = (*GlobalLockHeap[int, int])(nil)
	_ Instrumented = (*FunnelList[int, int])(nil)
	_ Instrumented = (*Map[int, int])(nil)
	_ Instrumented = (*SprayPQ[int])(nil)
)
