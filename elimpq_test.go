package skipqueue

import (
	"testing"
)

// TestElimPQBasic: sequential behaviour over both inner queues is exactly
// the inner queue's (sequential Pushes can never eliminate — no Pop is
// waiting — so everything falls through).
func TestElimPQBasic(t *testing.T) {
	for _, tc := range []struct {
		name string
		q    multisetPQ
	}{
		{"strict", NewElimPQ[uint64](4, WithSeed(1))},
		{"sharded", NewElimShardedPQ[uint64](4, 4, WithSeed(1))},
	} {
		t.Run(tc.name, func(t *testing.T) {
			q := tc.q
			if _, _, ok := q.Pop(); ok {
				t.Fatal("Pop on empty reported ok")
			}
			for i, pri := range []int64{30, 10, 20, 10} {
				q.Push(pri, uint64(i))
			}
			if q.Len() != 4 {
				t.Fatalf("Len = %d, want 4", q.Len())
			}
			if k, _, ok := q.Peek(); !ok || k != 10 {
				t.Fatalf("Peek = (%d, %v), want (10, true)", k, ok)
			}
			var got []int64
			for {
				k, _, ok := q.Pop()
				if !ok {
					break
				}
				got = append(got, k)
			}
			want := []int64{10, 10, 20, 30}
			if len(got) != len(want) {
				t.Fatalf("drained %v, want %v", got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("drained %v, want %v", got, want)
				}
			}
		})
	}
}

// TestElimPQSnapshotMerges: the adapter's Snapshot carries both the
// front-end's probe set and the inner queue's.
func TestElimPQSnapshotMerges(t *testing.T) {
	q := NewElimPQ[uint64](4, WithSeed(1), WithMetrics())
	q.Push(5, 1) // sequential: publishes, times out, falls through
	if _, _, ok := q.Pop(); !ok {
		t.Fatal("Pop failed")
	}
	snap := q.Snapshot()
	if !snap.Enabled {
		t.Fatal("snapshot not enabled with WithMetrics")
	}
	if got := snap.Counter("fallthrough.pushes"); got != 1 {
		t.Fatalf("fallthrough.pushes = %d, want 1 (elim probes missing from merge)", got)
	}
	if hv, ok := snap.Hist("insert"); !ok || hv.Count == 0 {
		t.Fatal("inner queue probes missing from merged snapshot")
	}
	if q.Slots() != 4 {
		t.Fatalf("Slots = %d, want 4", q.Slots())
	}
	if q.Unwrap() == nil {
		t.Fatal("Unwrap returned nil")
	}

	// Without WithMetrics the snapshot is zero-valued, like every family.
	off := NewElimPQ[uint64](0, WithSeed(1))
	if s := off.Snapshot(); s.Enabled {
		t.Fatal("metrics-off snapshot reports enabled")
	}
}
