package skipqueue

import (
	"skipqueue/internal/core"
	"skipqueue/internal/spray"
)

// SprayPQ is the SprayList-style relaxed priority queue of internal/spray:
// one lock-free skiplist whose DeleteMin performs a randomized descending
// "spray" walk of height O(log p) and total jump budget O(log³ p), then
// claims a near-minimal node with the paper's logical-delete CAS. Where
// ShardedPQ buys head parallelism with P independent queues, SprayPQ keeps
// one queue and decollides the deleters spatially; the delivered rank is
// O(p·log³ p) w.h.p. (see docs/ALGORITHMS.md §12 and internal/quality's
// spray envelope). Under low contention an adaptive CAS-failure EWMA
// routes Pop to the plain linear head scan instead, and EMPTY is only ever
// certified by that full scan — never by a failed spray.
//
// *SprayPQ[[]byte] satisfies internal/server.Backend, so pqd can serve it
// (-backend spray). Construct with NewSprayPQ. All methods are safe for
// concurrent use.
type SprayPQ[V any] struct {
	q *spray.PQ[V]
}

// NewSprayPQ returns an empty spray queue shaped for k concurrent
// deleters (0 selects GOMAXPROCS). The usual options apply to the
// underlying skiplist; WithRelaxed is implied — a claim drawn from a
// random prefix cannot honor the timestamp mechanism's strict minimum.
func NewSprayPQ[V any](k int, opts ...Option) *SprayPQ[V] {
	var cfg core.Config
	for _, o := range opts {
		o(&cfg)
	}
	return &SprayPQ[V]{q: spray.New[V](spray.Config{
		K:        k,
		MaxLevel: cfg.MaxLevel,
		P:        cfg.P,
		Seed:     cfg.Seed,
		Metrics:  cfg.Metrics,
		Flight:   cfg.Flight,
	})}
}

// Push adds value with the given priority. Duplicate priorities are fine.
func (pq *SprayPQ[V]) Push(priority int64, value V) { pq.q.Push(priority, value) }

// Pop removes and returns a small element (relaxed: one drawn from a
// random near-head prefix, not necessarily the global minimum). ok is
// false only after a full bottom-level scan found nothing.
func (pq *SprayPQ[V]) Pop() (priority int64, value V, ok bool) { return pq.q.Pop() }

// Peek returns the current head minimum without removing it (advisory
// under concurrency).
func (pq *SprayPQ[V]) Peek() (priority int64, value V, ok bool) { return pq.q.Peek() }

// Len returns the number of elements (exact when quiescent).
func (pq *SprayPQ[V]) Len() int { return pq.q.Len() }

// K returns the contention width the spray walk is shaped for.
func (pq *SprayPQ[V]) K() int { return pq.q.K() }

// Snapshot reads the observability probes: the skipqueue.spray set
// (walks, collisions, fallbacks, pop latency) merged with the underlying
// lock-free queue's probes. Zero-valued without WithMetrics.
func (pq *SprayPQ[V]) Snapshot() Snapshot { return pq.q.ObsSnapshot() }

// Unwrap exposes the internal spray queue for tests and harnesses that
// need its tracer hook or mode control.
func (pq *SprayPQ[V]) Unwrap() *spray.PQ[V] { return pq.q }
