module skipqueue

go 1.22
