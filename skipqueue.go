// Package skipqueue is a scalable concurrent priority queue library based on
// the SkipQueue of Itay Lotan and Nir Shavit ("Skiplist-Based Concurrent
// Priority Queues", IPPS 2000).
//
// The central type is Queue: a priority queue built on Pugh's lock-based
// concurrent skiplist, in which all locking is distributed — no root lock,
// no global counter — so Insert and DeleteMin throughput scales with the
// number of concurrent goroutines far beyond what heap-based designs
// sustain. DeleteMin claims the first unmarked bottom-level node with an
// atomic swap on its deleted flag and then physically unlinks it with the
// ordinary skiplist deletion.
//
// Two orderings are offered:
//
//   - the default, strict queue carries the paper's timestamp mechanism:
//     every DeleteMin returns the minimum of all elements whose insertions
//     completed before the call began (minus previously deleted ones);
//   - the relaxed queue (WithRelaxed) drops the timestamps; a DeleteMin may
//     then return an element inserted concurrently with it when that
//     element sorts before the strict minimum. Relaxed deletions are faster
//     under heavy contention (Section 5.4 of the paper).
//
// Queue has map semantics on keys (inserting an existing key updates its
// value); PQ layers multiset semantics on top for workloads with duplicate
// priorities, such as discrete-event simulation. The paper's baselines — the
// Hunt et al. concurrent heap and a combining-funnel FunnelList — are
// exported as Heap and FunnelList for comparison and benchmarking.
package skipqueue

import (
	"skipqueue/internal/core"
	"skipqueue/internal/flight"
	"skipqueue/internal/obs"
)

// Ordered is the key constraint: any type totally ordered by <.
type Ordered interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 | ~uintptr |
		~float32 | ~float64 | ~string
}

// Queue is a concurrent priority queue with unique keys. All methods are
// safe for concurrent use by any number of goroutines. Construct with New.
type Queue[K Ordered, V any] struct {
	q *core.Queue[K, V]
}

// Option configures a Queue or PQ.
type Option func(*core.Config)

// WithRelaxed disables the timestamp ordering mechanism. DeleteMin becomes
// faster under contention but may return a concurrently inserted element
// that sorts before the strict minimum.
func WithRelaxed() Option { return func(c *core.Config) { c.Relaxed = true } }

// WithMaxLevel bounds skiplist tower heights. The default (24) is ample for
// tens of millions of elements; lower values save a little memory for small
// queues.
func WithMaxLevel(n int) Option { return func(c *core.Config) { c.MaxLevel = n } }

// WithP sets the geometric tower-growth probability (default 0.5).
func WithP(p float64) Option { return func(c *core.Config) { c.P = p } }

// WithSeed seeds tower-height randomness, making single-threaded runs
// reproducible.
func WithSeed(s uint64) Option { return func(c *core.Config) { c.Seed = s } }

// WithMetrics enables the observability layer: per-operation latency
// histograms and contention probes, readable through Snapshot. Disabled (the
// default), every probe site compiles to a nil check — see
// docs/OBSERVABILITY.md for the measured overhead of both states.
func WithMetrics() Option { return func(c *core.Config) { c.Metrics = true } }

// WithFlight attaches a flight recorder to the queue: a fixed-size
// in-memory ring of contention events — lock re-acquisitions, failed
// CASes, sweep fallbacks, elimination exchanges — dumpable at any moment
// for post-hoc analysis of a latency spike. Independent of WithMetrics; a
// nil recorder is equivalent to omitting the option.
func WithFlight(r *FlightRecorder) Option { return func(c *core.Config) { c.Flight = r } }

// FlightRecorder is the event ring WithFlight plugs into a queue; see
// internal/flight for the recording discipline. Construct with
// NewFlightRecorder, read with its Snapshot method (a FlightDump).
type FlightRecorder = flight.Recorder

// FlightDump is one atomic read of a FlightRecorder: the retained events in
// timestamp order plus drop accounting.
type FlightDump = flight.Dump

// NewFlightRecorder returns a recorder named name with the given shard and
// per-shard slot counts (0 selects the defaults: 8 shards × 4096 slots).
func NewFlightRecorder(name string, shards, slots int) *FlightRecorder {
	return flight.New(name, shards, slots)
}

// Stats are the queue's monotone operation counters.
type Stats = core.Stats

// Snapshot is a point-in-time reading of a queue's observability probes:
// counters plus latency histograms with quantiles and log2 buckets. Snapshots
// are relaxed in the same sense as Stats — each probe is read atomically, but
// the set is not a consistent cut of a concurrently mutating queue. The
// zero Snapshot (Enabled false) is what queues built without WithMetrics
// return. Render with its Table or String methods, or marshal it to JSON.
type Snapshot = obs.Snapshot

// Instrumented is implemented by every queue family in this package: Queue,
// PQ, LockFree, Heap, GlobalLockHeap, FunnelList and Map all expose their
// probes through the same Snapshot shape, so harnesses can compare structures
// without per-type code.
type Instrumented interface {
	Snapshot() Snapshot
}

// New returns an empty queue.
func New[K Ordered, V any](opts ...Option) *Queue[K, V] {
	var cfg core.Config
	for _, o := range opts {
		o(&cfg)
	}
	return &Queue[K, V]{q: core.New[K, V](cfg)}
}

// Insert adds key with value. If key is already present its value is
// replaced and Insert reports false; inserting a fresh key reports true.
func (q *Queue[K, V]) Insert(key K, value V) bool {
	return q.q.Insert(key, value) == core.Inserted
}

// DeleteMin removes and returns the minimum element. ok is false when the
// queue holds no eligible element. On the default strict queue the result
// honors the paper's Definition 1: it is the minimum over all elements whose
// insertions completed before this call began, minus elements already
// deleted.
func (q *Queue[K, V]) DeleteMin() (key K, value V, ok bool) {
	return q.q.DeleteMin()
}

// PeekMin returns the current minimum without removing it. The answer is
// advisory under concurrency: another goroutine may claim the element before
// the caller acts on it.
func (q *Queue[K, V]) PeekMin() (key K, value V, ok bool) {
	return q.q.PeekMin()
}

// Len returns the number of elements (exact when quiescent).
func (q *Queue[K, V]) Len() int { return q.q.Len() }

// Relaxed reports whether the queue was built with WithRelaxed.
func (q *Queue[K, V]) Relaxed() bool { return q.q.Relaxed() }

// Stats returns a snapshot of the operation counters.
func (q *Queue[K, V]) Stats() Stats { return q.q.Stats() }

// Snapshot reads the observability probes (zero-valued without WithMetrics).
func (q *Queue[K, V]) Snapshot() Snapshot { return q.q.ObsSnapshot() }

// Keys returns the keys of all unclaimed elements in ascending order.
// Intended for tests and debugging of quiescent queues; under concurrency
// the snapshot is best-effort.
func (q *Queue[K, V]) Keys() []K { return q.q.CollectKeys(nil) }
