// Native real-thread benchmarks mirroring every table and figure of the
// paper's evaluation (Section 5). The cycle-accurate reproduction of the
// 1..256-processor sweeps lives in cmd/skipbench (the host machine rarely
// has 256 cores); these benches exercise the same workloads — same initial
// sizes, same insert/delete mixes, same work periods — on real goroutines,
// with the paper's figure number in the benchmark name:
//
//	go test -bench=Fig -benchmem
//
// Ablation benches (timestamps, GC scheme, level parameters) follow the
// figure benches.
package skipqueue

import (
	"sync/atomic"
	"testing"

	"skipqueue/internal/retire"
	"skipqueue/internal/xrand"
)

// pqUnderTest adapts the three structures to one benchmark loop.
type pqUnderTest interface {
	insert(k int64, v int64)
	deleteMin() (int64, bool)
}

type benchSkipQ struct{ q *Queue[int64, int64] }

func (s benchSkipQ) insert(k, v int64)        { s.q.Insert(k, v) }
func (s benchSkipQ) deleteMin() (int64, bool) { k, _, ok := s.q.DeleteMin(); return k, ok }

type benchHeap struct{ h *Heap[int64, int64] }

func (s benchHeap) insert(k, v int64)        { _ = s.h.Insert(k, v) }
func (s benchHeap) deleteMin() (int64, bool) { k, _, ok := s.h.DeleteMin(); return k, ok }

type benchFunnel struct{ f *FunnelList[int64, int64] }

func (s benchFunnel) insert(k, v int64)        { s.f.Insert(k, v) }
func (s benchFunnel) deleteMin() (int64, bool) { k, _, ok := s.f.DeleteMin(); return k, ok }

// benchStructures builds each structure fresh, prefilled with initial random
// keys.
func benchStructures(initial int, capacity int) map[string]func() pqUnderTest {
	prefill := func(q pqUnderTest) pqUnderTest {
		rng := xrand.NewRand(77)
		for i := 0; i < initial; i++ {
			q.insert(rng.Int63()%(1<<40), 0)
		}
		return q
	}
	return map[string]func() pqUnderTest{
		"SkipQueue":  func() pqUnderTest { return prefill(benchSkipQ{New[int64, int64](WithSeed(1))}) },
		"Heap":       func() pqUnderTest { return prefill(benchHeap{NewHeap[int64, int64](capacity)}) },
		"FunnelList": func() pqUnderTest { return prefill(benchFunnel{NewFunnelList[int64, int64]()}) },
	}
}

// localWork spins for roughly n "cycles" of local computation between queue
// operations, as in the paper's benchmark loop.
func localWork(n int64) int64 {
	var acc int64
	for i := int64(0); i < n; i++ {
		acc += i ^ (acc << 1)
	}
	return acc
}

var benchSink atomic.Int64

// runMixed is the paper's synthetic benchmark: alternate local work with a
// coin-flip Insert or DeleteMin of a uniformly random priority.
func runMixed(b *testing.B, build func() pqUnderTest, insertRatio float64, work int64) {
	b.Helper()
	q := build()
	b.ResetTimer()
	var seed atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		rng := xrand.NewRand(seed.Add(1) * 0x9e3779b97f4a7c15)
		var acc int64
		for pb.Next() {
			acc += localWork(work)
			if rng.Float64() < insertRatio {
				q.insert(rng.Int63()%(1<<40), 1)
			} else {
				q.deleteMin()
			}
		}
		benchSink.Add(acc)
	})
}

// BenchmarkFig2WorkSweep is Figure 2: latency as the local work period
// varies, on the large (1000-element) SkipQueue.
func BenchmarkFig2WorkSweep(b *testing.B) {
	for _, work := range []int64{100, 1000, 2000, 3000, 4000, 5000, 6000} {
		b.Run(benchName("work", work), func(b *testing.B) {
			build := benchStructures(1000, 1<<21)["SkipQueue"]
			runMixed(b, build, 0.5, work)
		})
	}
}

// BenchmarkFig3Small is Figure 3: the small-structure benchmark (50 initial
// elements, 50% inserts) across all three structures.
func BenchmarkFig3Small(b *testing.B) {
	for name, build := range benchStructures(50, 1<<21) {
		b.Run(name, func(b *testing.B) { runMixed(b, build, 0.5, 100) })
	}
}

// BenchmarkFig4Large is Figure 4: the large-structure benchmark (1000
// initial elements, 50% inserts).
func BenchmarkFig4Large(b *testing.B) {
	for name, build := range benchStructures(1000, 1<<21) {
		b.Run(name, func(b *testing.B) { runMixed(b, build, 0.5, 100) })
	}
}

// BenchmarkFig5Deletes is Figure 5: 27000 initial elements and 70% deletes,
// Heap vs SkipQueue (the paper drops the FunnelList here, having shown it
// collapses on large structures).
func BenchmarkFig5Deletes(b *testing.B) {
	builds := benchStructures(27000, 1<<21)
	for _, name := range []string{"Heap", "SkipQueue"} {
		b.Run(name, func(b *testing.B) { runMixed(b, builds[name], 0.3, 100) })
	}
}

// relaxedPair builds the strict and relaxed SkipQueues for Figures 6-8.
func relaxedPair(initial int) map[string]func() pqUnderTest {
	build := func(opts ...Option) func() pqUnderTest {
		return func() pqUnderTest {
			q := New[int64, int64](opts...)
			rng := xrand.NewRand(77)
			for i := 0; i < initial; i++ {
				q.Insert(rng.Int63()%(1<<40), 0)
			}
			return benchSkipQ{q}
		}
	}
	return map[string]func() pqUnderTest{
		"Strict":  build(WithSeed(1)),
		"Relaxed": build(WithSeed(1), WithRelaxed()),
	}
}

// BenchmarkFig6RelaxedSmall is Figure 6: strict vs relaxed on the small
// structure.
func BenchmarkFig6RelaxedSmall(b *testing.B) {
	for name, build := range relaxedPair(50) {
		b.Run(name, func(b *testing.B) { runMixed(b, build, 0.5, 100) })
	}
}

// BenchmarkFig7RelaxedLarge is Figure 7: strict vs relaxed on the large
// structure.
func BenchmarkFig7RelaxedLarge(b *testing.B) {
	for name, build := range relaxedPair(1000) {
		b.Run(name, func(b *testing.B) { runMixed(b, build, 0.5, 100) })
	}
}

// BenchmarkFig8RelaxedDeletes is Figure 8: strict vs relaxed with 70%
// deletions on 27000 initial elements.
func BenchmarkFig8RelaxedDeletes(b *testing.B) {
	for name, build := range relaxedPair(27000) {
		b.Run(name, func(b *testing.B) { runMixed(b, build, 0.3, 100) })
	}
}

// BenchmarkLevelParams ablates the skiplist's two tuning knobs called out in
// DESIGN.md: the level probability p and the maximum level.
func BenchmarkLevelParams(b *testing.B) {
	cases := []struct {
		name string
		opts []Option
	}{
		{"p0.50-max24", []Option{WithP(0.5), WithMaxLevel(24)}},
		{"p0.25-max24", []Option{WithP(0.25), WithMaxLevel(24)}},
		{"p0.50-max10", []Option{WithP(0.5), WithMaxLevel(10)}},
		{"p0.25-max10", []Option{WithP(0.25), WithMaxLevel(10)}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			build := func() pqUnderTest {
				q := New[int64, int64](append(c.opts, WithSeed(1))...)
				rng := xrand.NewRand(77)
				for i := 0; i < 1000; i++ {
					q.Insert(rng.Int63()%(1<<40), 0)
				}
				return benchSkipQ{q}
			}
			runMixed(b, build, 0.5, 100)
		})
	}
}

// BenchmarkRetireAblation compares the paper's timestamp-based reclamation
// scheme (internal/retire driving a freelist) against leaning on the Go
// garbage collector, under a retire-heavy churn.
func BenchmarkRetireAblation(b *testing.B) {
	type node struct{ payload [128]byte }

	b.Run("GoGC", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			var keep *node
			for pb.Next() {
				keep = new(node)
				keep.payload[0] = 1
			}
			_ = keep
		})
	})

	b.Run("RetireDomain", func(b *testing.B) {
		workers := 64 // more handles than goroutines is fine
		pool := make(chan *node, 4096)
		d := retire.NewDomain[*node](workers, nil, func(n *node) {
			select {
			case pool <- n:
			default:
			}
		})
		var next atomic.Int64
		stop := make(chan struct{})
		go d.Run(stop, 0)
		defer close(stop)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			h := d.Handle(int(next.Add(1)) % workers)
			for pb.Next() {
				var n *node
				select {
				case n = <-pool:
				default:
					n = new(node)
				}
				n.payload[0] = 1
				h.Enter()
				h.Retire(n)
				h.Exit()
			}
		})
	})
}

func benchName(prefix string, v int64) string {
	const digits = "0123456789"
	if v == 0 {
		return prefix + "-0"
	}
	var buf [24]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = digits[v%10]
		v /= 10
	}
	return prefix + "-" + string(buf[i:])
}
