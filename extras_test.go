package skipqueue

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestMapBasics(t *testing.T) {
	m := NewMap[string, int](MapSeed(1), MapP(0.25), MapMaxLevel(12))
	if m.Contains("a") {
		t.Fatal("empty map contains a key")
	}
	if !m.Set("b", 2) || !m.Set("a", 1) || !m.Set("c", 3) {
		t.Fatal("fresh Set reported update")
	}
	if m.Set("b", 22) {
		t.Fatal("update reported insert")
	}
	if v, ok := m.Get("b"); !ok || v != 22 {
		t.Fatalf("Get(b) = %d,%v", v, ok)
	}
	if k, v, ok := m.Min(); !ok || k != "a" || v != 1 {
		t.Fatalf("Min = %q,%d,%v", k, v, ok)
	}
	keys := m.Keys()
	if len(keys) != 3 || !sort.StringsAreSorted(keys) {
		t.Fatalf("Keys = %v", keys)
	}
	if v, ok := m.Delete("a"); !ok || v != 1 {
		t.Fatalf("Delete(a) = %d,%v", v, ok)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d", m.Len())
	}
	visited := 0
	m.Range(func(string, int) bool { visited++; return true })
	if visited != 2 {
		t.Fatalf("Range visited %d", visited)
	}
}

func TestMapConcurrent(t *testing.T) {
	m := NewMap[int, int]()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 2000; i++ {
				k := rng.Intn(256)
				switch rng.Intn(3) {
				case 0:
					m.Set(k, k)
				case 1:
					if v, ok := m.Get(k); ok && v != k {
						t.Errorf("Get(%d) = %d", k, v)
					}
				case 2:
					m.Delete(k)
				}
			}
		}(w)
	}
	wg.Wait()
	keys := m.Keys()
	if !sort.IntsAreSorted(keys) {
		t.Fatal("keys unsorted after churn")
	}
}

func TestRankedCookbookOps(t *testing.T) {
	r := NewRanked[int, string](MapSeed(2))
	for _, k := range []int{40, 10, 30, 20} {
		r.Set(k, "v")
	}
	if k, _, ok := r.At(2); !ok || k != 30 {
		t.Fatalf("At(2) = %d,%v", k, ok)
	}
	if got := r.Rank(25); got != 2 {
		t.Fatalf("Rank(25) = %d", got)
	}
	if k, _, ok := r.DeleteMin(); !ok || k != 10 {
		t.Fatalf("DeleteMin = %d,%v", k, ok)
	}
	other := NewRanked[int, string]()
	other.Set(5, "five")
	other.Set(50, "fifty")
	r.Merge(other)
	want := []int{5, 20, 30, 40, 50}
	got := r.Keys()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("after merge: %v", got)
		}
	}
	hi := r.SplitAt(3)
	if r.Len() != 3 || hi.Len() != 2 {
		t.Fatalf("split: %d/%d", r.Len(), hi.Len())
	}
	if k, _, _ := hi.Min(); k != 40 {
		t.Fatalf("high half min = %d", k)
	}
	if _, ok := r.Get(50); ok {
		t.Fatal("low half kept a high key")
	}
	count := 0
	r.Range(func(int, string) bool { count++; return true })
	if count != 3 {
		t.Fatalf("Range visited %d", count)
	}
	if _, ok := r.Delete(20); !ok {
		t.Fatal("Delete(20) failed")
	}
}

func TestBoundedWrapper(t *testing.T) {
	b := NewBounded[string](16)
	if b.Range() != 16 {
		t.Fatalf("Range = %d", b.Range())
	}
	b.Insert(9, "nine")
	b.Insert(2, "two")
	b.Insert(9, "nine2")
	if p, ok := b.PeekMin(); !ok || p != 2 {
		t.Fatalf("PeekMin = %d,%v", p, ok)
	}
	p, v, ok := b.DeleteMin()
	if !ok || p != 2 || v != "two" {
		t.Fatalf("DeleteMin = %d,%q,%v", p, v, ok)
	}
	if b.Len() != 2 {
		t.Fatalf("Len = %d", b.Len())
	}
	if st := b.Stats(); st.Inserts != 3 || st.DeleteMins != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBoundedConcurrent(t *testing.T) {
	b := NewBounded[int](8)
	var wg sync.WaitGroup
	var popped sync.Map
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 2000; i++ {
				if rng.Intn(2) == 0 {
					b.Insert(rng.Intn(8), w*2000+i)
				} else if _, v, ok := b.DeleteMin(); ok {
					if _, dup := popped.LoadOrStore(v, true); dup {
						t.Errorf("value %d popped twice", v)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	st := b.Stats()
	if int(st.Inserts)-int(st.DeleteMins) != b.Len() {
		t.Fatalf("conservation: %+v Len=%d", st, b.Len())
	}
}

func TestGlobalLockHeapWrapper(t *testing.T) {
	g := NewGlobalLockHeap[int, string]()
	g.Insert(2, "b")
	g.Insert(1, "a")
	g.Insert(1, "a2") // multiset
	if g.Len() != 3 {
		t.Fatalf("Len = %d", g.Len())
	}
	if k, _, ok := g.PeekMin(); !ok || k != 1 {
		t.Fatalf("PeekMin = %d,%v", k, ok)
	}
	k, v, ok := g.DeleteMin()
	if !ok || k != 1 || (v != "a" && v != "a2") {
		t.Fatalf("DeleteMin = %d,%q,%v", k, v, ok)
	}
}
