package skipqueue

import (
	"fmt"
	"sync"
	"testing"

	"skipqueue/internal/xrand"
)

// multisetPQ is the Push/Pop/Peek/Len surface every root multiset queue
// shares (the same shape internal/server.Backend consumes).
type multisetPQ interface {
	Push(priority int64, value uint64)
	Pop() (int64, uint64, bool)
	Peek() (int64, uint64, bool)
	Len() int
}

// stressBackends enumerates every multiset backend, including the relaxed
// sharded one, under the construction each family expects.
func stressBackends() []struct {
	name string
	mk   func() multisetPQ
} {
	return []struct {
		name string
		mk   func() multisetPQ
	}{
		{"skipqueue", func() multisetPQ { return NewPQ[uint64](WithSeed(1)) }},
		{"relaxed", func() multisetPQ { return NewPQ[uint64](WithSeed(1), WithRelaxed()) }},
		{"lockfree", func() multisetPQ { return NewLockFreePQ[uint64](WithSeed(1)) }},
		{"glheap", func() multisetPQ { return NewGlobalHeapPQ[uint64](WithSeed(1)) }},
		{"sharded", func() multisetPQ { return NewShardedPQ[uint64](8, WithSeed(1)) }},
		{"elim", func() multisetPQ { return NewElimPQ[uint64](4, WithSeed(1)) }},
		{"elim-sharded", func() multisetPQ { return NewElimShardedPQ[uint64](4, 8, WithSeed(1)) }},
		{"spray", func() multisetPQ { return NewSprayPQ[uint64](8, WithSeed(1)) }},
	}
}

// TestStressChurnMatrix is the table-driven churn matrix: every backend ×
// 1..16 goroutines under a mixed Insert/DeleteMin/Peek workload, followed
// by an exact multiset reconciliation — every pushed value is delivered or
// drained exactly once, and nothing else ever appears. The scheduled CI
// stress job runs this with -race -count=5; -short keeps the tier-1 and
// race-PR runs fast.
func TestStressChurnMatrix(t *testing.T) {
	goroutines := []int{1, 2, 4, 8, 16}
	perWorker := uint64(2000)
	if testing.Short() {
		goroutines = []int{1, 4}
		perWorker = 500
	}
	for _, b := range stressBackends() {
		for _, g := range goroutines {
			t.Run(fmt.Sprintf("%s/g%d", b.name, g), func(t *testing.T) {
				churn(t, b.mk(), g, perWorker)
			})
		}
	}
}

// churn runs the mixed workload and reconciles. Values are globally unique
// (worker index × stride + op index), so multiset conservation reduces to
// set equality over delivered values.
func churn(t *testing.T, q multisetPQ, workers int, perWorker uint64) {
	var mu sync.Mutex
	delivered := map[uint64]bool{}
	pushed := workers * int(perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.NewRand(uint64(w)*0x9e3779b97f4a7c15 + 1)
			local := make([]uint64, 0, perWorker)
			for i := uint64(0); i < perWorker; i++ {
				id := uint64(w)*perWorker*16 + i
				q.Push(rng.Int63()%4096, id)
				switch rng.Intn(10) {
				case 0, 1, 2, 3, 4, 5: // pop often enough to churn, rarely enough to keep a backlog
					if _, v, ok := q.Pop(); ok {
						local = append(local, v)
					}
				case 6:
					q.Peek() // advisory; must not disturb conservation
				case 7:
					_ = q.Len()
				}
			}
			mu.Lock()
			defer mu.Unlock()
			for _, v := range local {
				if delivered[v] {
					t.Errorf("value %d delivered twice", v)
					return
				}
				delivered[v] = true
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for {
		_, v, ok := q.Pop()
		if !ok {
			break
		}
		if delivered[v] {
			t.Fatalf("value %d delivered twice (drain)", v)
		}
		delivered[v] = true
	}
	if len(delivered) != pushed {
		t.Fatalf("delivered %d distinct values, want %d", len(delivered), pushed)
	}
	if n := q.Len(); n != 0 {
		t.Fatalf("Len after drain = %d, want 0", n)
	}
}
